#include "engine/engine.h"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <semaphore>
#include <utility>

#include "common/check.h"
#include "common/failpoint.h"
#include "common/timer.h"
#include "xq/parser.h"

namespace rox::engine {

namespace {

// SplitMix64 finalizer: decorrelates the per-query RNG streams derived
// from (base seed, sequence number).
uint64_t MixSeed(uint64_t base, uint64_t seq) {
  uint64_t z = base + 0x9e3779b97f4a7c15ULL * (seq + 1);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

// Async dispatch queues the query on the engine pool before the
// deadline is armed. A governed query's deadline must cover that wait
// too — otherwise a backlogged pool silently extends every deadline
// by its queue depth. Called at the top of the pooled task: burns the
// wait off the relative deadline (down to an already-lapsed epsilon),
// materializing the engine defaults first so they are charged too.
void ChargeDispatchQueueWait(
    QueryRequest& req, const QueryLimits& defaults,
    std::chrono::steady_clock::time_point dispatched) {
  if (!req.limits.has_value() && defaults.deadline_ms > 0) {
    req.limits = defaults;
  }
  if (!req.limits.has_value() || req.limits->deadline_ms <= 0) return;
  const double waited_ms =
      std::chrono::duration<double, std::milli>(
          std::chrono::steady_clock::now() - dispatched)
          .count();
  req.limits->deadline_ms =
      std::max(1e-3, req.limits->deadline_ms - waited_ms);
}

}  // namespace

std::string EngineStats::ToString() const {
  char buf[1024];
  std::snprintf(
      buf, sizeof(buf),
      "queries: %llu ok, %llu failed in %.2fs (%.1f q/s)\n"
      "latency: p50 %.2f ms, p95 %.2f ms, mean %.2f ms, max %.2f ms\n"
      "corpus: epoch %llu, %llu publishes (+%llu/-%llu docs), "
      "%llu cache invalidations, %llu stale hits\n"
      "plan cache: %llu hits / %llu misses (%.0f%% hit rate)\n"
      "result cache: %llu replays (%.0f%% of completed)\n"
      "warm starts: %llu runs reused %llu edge weights\n"
      "optimizer: %llu edges executed, sampling %.1f ms, execution %.1f ms\n"
      "materialization: %llu gathers, %.2f MB gathered, peak intermediate "
      "%llu rows",
      static_cast<unsigned long long>(completed),
      static_cast<unsigned long long>(failed), wall_seconds, qps(), p50_ms,
      p95_ms, mean_ms, max_ms, static_cast<unsigned long long>(epoch),
      static_cast<unsigned long long>(publishes),
      static_cast<unsigned long long>(docs_added),
      static_cast<unsigned long long>(docs_removed),
      static_cast<unsigned long long>(cache_invalidations),
      static_cast<unsigned long long>(stale_cache_hits),
      static_cast<unsigned long long>(plan_cache_hits),
      static_cast<unsigned long long>(plan_cache_misses),
      100 * plan_hit_rate(),
      static_cast<unsigned long long>(result_cache_hits),
      100 * result_hit_rate(),
      static_cast<unsigned long long>(warm_started_runs),
      static_cast<unsigned long long>(warm_started_weights),
      static_cast<unsigned long long>(edges_executed), sampling_ms,
      execution_ms, static_cast<unsigned long long>(gather_count),
      static_cast<double>(bytes_gathered) / (1024.0 * 1024.0),
      static_cast<unsigned long long>(peak_intermediate_rows));
  std::string out = buf;
  if (queries_shed + queries_cancelled + queries_deadline_exceeded +
          queries_budget_exceeded + peak_query_memory_bytes +
          admission_running + admission_queued >
      0) {
    std::snprintf(
        buf, sizeof(buf),
        "\ngovernor: %llu shed, %llu cancelled, %llu deadline-exceeded, "
        "%llu over-budget; peak query memory %.2f MB; admission %zu "
        "running / %zu queued (peak %zu)",
        static_cast<unsigned long long>(queries_shed),
        static_cast<unsigned long long>(queries_cancelled),
        static_cast<unsigned long long>(queries_deadline_exceeded),
        static_cast<unsigned long long>(queries_budget_exceeded),
        static_cast<double>(peak_query_memory_bytes) / (1024.0 * 1024.0),
        admission_running, admission_queued, peak_admission_queued);
    out += buf;
  }
  if (num_shards > 1) {
    std::snprintf(buf, sizeof(buf),
                  "\nshards: %zu, %llu fan-out steps; rows per shard:",
                  num_shards,
                  static_cast<unsigned long long>(sharded.fanouts));
    out += buf;
    for (uint64_t rows : sharded.shard_rows) {
      std::snprintf(buf, sizeof(buf), " %llu",
                    static_cast<unsigned long long>(rows));
      out += buf;
    }
  }
  return out;
}

std::string EngineStats::ToJson() const {
  std::string out = "{\n";
  char buf[128];
  bool first = true;
  auto num = [&](const char* key, double v) {
    std::snprintf(buf, sizeof(buf), "%s  \"%s\": %.3f",
                  first ? "" : ",\n", key, v);
    out += buf;
    first = false;
  };
  auto count = [&](const char* key, uint64_t v) {
    std::snprintf(buf, sizeof(buf), "%s  \"%s\": %llu",
                  first ? "" : ",\n", key,
                  static_cast<unsigned long long>(v));
    out += buf;
    first = false;
  };
  count("completed", completed);
  count("failed", failed);
  num("wall_seconds", wall_seconds);
  num("qps", qps());
  num("p50_ms", p50_ms);
  num("p95_ms", p95_ms);
  num("mean_ms", mean_ms);
  num("max_ms", max_ms);
  count("epoch", epoch);
  count("publishes", publishes);
  count("docs_added", docs_added);
  count("docs_removed", docs_removed);
  count("cache_invalidations", cache_invalidations);
  count("plan_cache_hits", plan_cache_hits);
  count("plan_cache_misses", plan_cache_misses);
  num("plan_hit_rate", plan_hit_rate());
  count("result_cache_hits", result_cache_hits);
  num("result_hit_rate", result_hit_rate());
  count("warm_started_runs", warm_started_runs);
  count("warm_started_weights", warm_started_weights);
  count("edges_executed", edges_executed);
  num("sampling_ms", sampling_ms);
  num("execution_ms", execution_ms);
  count("gather_count", gather_count);
  count("bytes_gathered", bytes_gathered);
  count("peak_intermediate_rows", peak_intermediate_rows);
  count("num_shards", num_shards);
  count("sharded_fanouts", sharded.fanouts);
  count("queries_shed", queries_shed);
  count("queries_cancelled", queries_cancelled);
  count("queries_deadline_exceeded", queries_deadline_exceeded);
  count("queries_budget_exceeded", queries_budget_exceeded);
  count("peak_query_memory_bytes", peak_query_memory_bytes);
  count("admission_running", admission_running);
  count("admission_queued", admission_queued);
  count("peak_admission_queued", peak_admission_queued);
  out += "\n}\n";
  return out;
}

Engine::Engine(Corpus corpus, EngineOptions options)
    : Engine(std::make_shared<const Corpus>(std::move(corpus)), options) {}

Engine::Engine(std::shared_ptr<const Corpus> corpus, EngineOptions options)
    : options_(options),
      gate_(options.max_concurrent_queries, options.max_queued_queries),
      cache_(options.cache_capacity),
      pool_(options.num_threads) {
  ROX_CHECK(corpus != nullptr);
  stats_.BindMetrics(options_.metrics != nullptr
                         ? options_.metrics
                         : &obs::MetricsRegistry::Global());
  if (options_.num_shards > 1) {
    size_t workers = options_.shard_threads > 0 ? options_.shard_threads
                                                : options_.num_shards;
    // An absurd shard count must not translate into an absurd thread
    // count: std::thread construction throws on resource exhaustion
    // and nothing above us could do better than crash. ParallelFor
    // queues the excess iterations, so capping workers only bounds
    // parallelism, never correctness.
    constexpr size_t kMaxShardWorkers = 64;
    workers = std::min(workers, kMaxShardWorkers);
    shard_pool_ = std::make_unique<ThreadPool>(workers);
  }
  current_epoch_.store(corpus->epoch(), std::memory_order_release);
  state_ = MakeState(std::move(corpus), nullptr);
}

Engine::~Engine() = default;

std::shared_ptr<const Engine::PublishedState> Engine::MakeState(
    std::shared_ptr<const Corpus> corpus, const ShardedCorpus* prev) {
  auto st = std::make_shared<PublishedState>();
  st->corpus = std::move(corpus);
  if (options_.num_shards > 1) {
    st->sharded =
        prev != nullptr
            ? std::make_shared<const ShardedCorpus>(*st->corpus, *prev,
                                                    shard_pool_.get())
            : std::make_shared<const ShardedCorpus>(
                  *st->corpus, options_.num_shards, shard_pool_.get());
    st->exec.shards = st->sharded.get();
    st->exec.pool = shard_pool_.get();
    st->exec.sample_shard = options_.sample_shard;
  }
  return st;
}

void Engine::Publish(CorpusBuilder builder, const PublishedState& base) {
  const size_t added = builder.added_docs();
  const size_t removed = builder.removed_docs();
  auto next = std::make_shared<const Corpus>(std::move(builder).Build());
  const uint64_t next_epoch = next->epoch();
  // The base epoch's sharded view seeds the incremental rebuild.
  auto st = MakeState(std::move(next), base.sharded.get());
  {
    std::lock_guard<std::mutex> lock(state_mu_);
    state_ = std::move(st);
    // Inside the lock: a query that pins the new state must never
    // observe the old epoch here (it would skip its cache write-back).
    current_epoch_.store(next_epoch, std::memory_order_release);
  }
  // Purge cache entries of dead epochs. In-flight queries of older
  // epochs finish against their pinned snapshots; their late write-
  // backs are dropped (see Execute), so nothing stale can resurface.
  size_t invalidated = 0;
  if (options_.enable_cache) {
    std::lock_guard<std::mutex> lock(cache_mu_);
    invalidated = cache_.EvictBefore(next_epoch);
  }
  stats_.RecordPublish(added, removed, invalidated);
}

Result<std::vector<DocId>> Engine::AddDocuments(std::vector<IngestDoc> docs) {
  if (docs.empty()) return std::vector<DocId>{};
  std::lock_guard<std::mutex> ingest(ingest_mu_);
  auto base = Published();
  CorpusBuilder builder(*base->corpus);
  std::vector<DocId> ids;
  ids.reserve(docs.size());
  for (IngestDoc& d : docs) {
    // Parsing interns into the shared pool, which is safe while older
    // epochs serve queries; a failure here publishes nothing.
    ROX_ASSIGN_OR_RETURN(DocId id, builder.AddXml(d.xml, std::move(d.name)));
    ids.push_back(id);
  }
  Publish(std::move(builder), *base);
  return ids;
}

Status Engine::RemoveDocument(std::string_view name) {
  std::lock_guard<std::mutex> ingest(ingest_mu_);
  auto base = Published();
  CorpusBuilder builder(*base->corpus);
  ROX_RETURN_IF_ERROR(builder.Remove(name));
  Publish(std::move(builder), *base);
  return Status::Ok();
}

QueryResponse Engine::Execute(const QueryRequest& request) {
  return Execute(request, ReserveSequence());
}

QueryResponse Engine::Execute(const QueryRequest& request,
                              uint64_t sequence) {
  QueryResponse resp;
  resp.mode = request.mode;
  resp.client_tag = request.client_tag;

  if (request.mode == QueryMode::kExplain) {
    Result<std::string> text = ExplainText(request.text);
    resp.result.sequence = sequence;
    resp.result.epoch = CurrentEpoch();
    if (text.ok()) {
      resp.explain_text = std::move(*text);
    } else {
      resp.status = text.status();
      resp.result.status = text.status();
    }
    return resp;
  }

  // kProfile forces a full-detail trace and a real execution; kExecute
  // resolves the request's overrides against the engine defaults.
  const bool profile = request.mode == QueryMode::kProfile;
  const obs::TraceLevel trace_level =
      profile ? obs::TraceLevel::kFull
              : request.trace_level.value_or(options_.trace_level);
  const bool allow_replay = !profile && request.allow_result_replay;
  const QueryLimits* limits =
      request.limits.has_value() ? &*request.limits : nullptr;
  resp.result = ExecuteQuery(request.text, sequence, trace_level,
                             allow_replay, limits, request.client_tag);
  resp.status = resp.result.status;
  return resp;
}

std::future<QueryResponse> Engine::ExecuteAsync(QueryRequest request) {
  uint64_t seq = ReserveSequence();
  const auto dispatched = std::chrono::steady_clock::now();
  return pool_.Async([this, req = std::move(request), seq,
                      dispatched]() mutable {
    ChargeDispatchQueueWait(req, options_.default_limits, dispatched);
    return Execute(req, seq);
  });
}

void Engine::ExecuteAsync(QueryRequest request, uint64_t sequence,
                          std::function<void(QueryResponse)> done) {
  const auto dispatched = std::chrono::steady_clock::now();
  pool_.Submit([this, req = std::move(request), sequence,
                done = std::move(done), dispatched]() mutable {
    ChargeDispatchQueueWait(req, options_.default_limits, dispatched);
    done(Execute(req, sequence));
  });
}

std::future<QueryResult> Engine::Submit(std::string query_text) {
  uint64_t seq = ReserveSequence();
  QueryRequest req;
  req.text = std::move(query_text);
  const auto dispatched = std::chrono::steady_clock::now();
  return pool_.Async([this, req = std::move(req), seq,
                      dispatched]() mutable {
    ChargeDispatchQueueWait(req, options_.default_limits, dispatched);
    return Execute(req, seq).result;
  });
}

std::future<QueryResult> Engine::Submit(std::string query_text,
                                        QueryLimits limits) {
  uint64_t seq = ReserveSequence();
  QueryRequest req;
  req.text = std::move(query_text);
  req.limits = limits;
  const auto dispatched = std::chrono::steady_clock::now();
  return pool_.Async([this, req = std::move(req), seq,
                      dispatched]() mutable {
    ChargeDispatchQueueWait(req, options_.default_limits, dispatched);
    return Execute(req, seq).result;
  });
}

QueryResult Engine::Run(std::string query_text) {
  QueryRequest req;
  req.text = std::move(query_text);
  return Execute(req).result;
}

QueryResult Engine::Run(std::string query_text, QueryLimits limits) {
  QueryRequest req;
  req.text = std::move(query_text);
  req.limits = limits;
  return Execute(req).result;
}

Status Engine::Kill(uint64_t sequence) {
  std::lock_guard<std::mutex> lock(active_mu_);
  auto it = active_.find(sequence);
  if (it == active_.end()) {
    // Completed, shed, or never started: nothing in flight to cancel.
    // Distinct from OK so the server's disconnect path can tell
    // "killed" apart from "already done".
    return Status::NotFound("no in-flight query with this sequence");
  }
  it->second->Cancel();
  return Status::Ok();
}

size_t Engine::KillAll() {
  std::lock_guard<std::mutex> lock(active_mu_);
  for (auto& [seq, token] : active_) token->Cancel();
  return active_.size();
}

QueryResult Engine::Profile(std::string query_text) {
  QueryRequest req;
  req.text = std::move(query_text);
  req.mode = QueryMode::kProfile;
  return Execute(req).result;
}

Result<std::string> Engine::Explain(const std::string& query_text) {
  QueryRequest req;
  req.text = query_text;
  req.mode = QueryMode::kExplain;
  QueryResponse resp = Execute(req);
  if (!resp.ok()) return resp.status;
  return std::move(resp.explain_text);
}

Result<std::string> Engine::ExplainText(const std::string& query_text) {
  auto st = Published();
  const uint64_t epoch = st->corpus->epoch();
  CorpusSnapshot snapshot(st->corpus);

  // Share the plan cache (and its learned weights) so an explain after
  // real runs reports the warm estimates those runs would start from.
  const std::string key = QueryCache::Normalize(query_text);
  std::shared_ptr<const xq::CompiledQuery> compiled;
  std::vector<double> warm_weights;
  bool have_warm = false;
  if (options_.enable_cache) {
    std::lock_guard<std::mutex> lock(cache_mu_);
    CacheEntry* entry = cache_.Lookup(epoch, key, /*count_hit=*/false);
    if (entry != nullptr && entry->epoch == epoch) {
      compiled = entry->compiled;
      if (options_.warm_start && !entry->warm_edge_weights.empty()) {
        warm_weights = entry->warm_edge_weights;
        have_warm = true;
      }
    }
  }
  if (compiled == nullptr) {
    ROX_ASSIGN_OR_RETURN(
        xq::CompiledQuery fresh,
        xq::CompileXQuery(snapshot, query_text, options_.compile));
    compiled = std::make_shared<const xq::CompiledQuery>(std::move(fresh));
  }

  RoxOptions rox = options_.rox;
  rox.seed = MixSeed(options_.rox.seed, next_sequence_.fetch_add(1));
  if (st->sharded != nullptr) rox.sharded = &st->exec;
  ROX_ASSIGN_OR_RETURN(
      xq::ExplainInfo info,
      xq::ExplainXQuery(snapshot, *compiled, rox,
                        have_warm ? &warm_weights : nullptr));

  const JoinGraph& g = compiled->graph;
  std::string out;
  char buf[128];
  std::snprintf(buf, sizeof(buf),
                "explain (epoch %llu, phase-1 estimates only)\n",
                static_cast<unsigned long long>(epoch));
  out += buf;
  out += "vertices:\n";
  for (VertexId v = 0; v < g.VertexCount(); ++v) {
    double card = v < info.vertex_cards.size() ? info.vertex_cards[v] : -1.0;
    if (card >= 0) {
      std::snprintf(buf, sizeof(buf), "  v%u %s  card~%.0f\n", v,
                    g.vertex(v).label.c_str(), card);
    } else {
      std::snprintf(buf, sizeof(buf), "  v%u %s  card=?\n", v,
                    g.vertex(v).label.c_str());
    }
    out += buf;
  }
  out += "edges (w = phase-1 sampled output-cardinality estimate):\n";
  for (EdgeId e = 0; e < g.EdgeCount(); ++e) {
    double w = e < info.edge_weights.size() ? info.edge_weights[e] : -1.0;
    bool first = std::find(info.predicted_first.begin(),
                           info.predicted_first.end(),
                           e) != info.predicted_first.end();
    if (w >= 0) {
      std::snprintf(buf, sizeof(buf), "  e%u %s  w~%.0f%s\n", e,
                    g.EdgeLabel(e).c_str(), w,
                    first ? "  <- predicted first" : "");
    } else {
      std::snprintf(buf, sizeof(buf), "  e%u %s  w=?%s\n", e,
                    g.EdgeLabel(e).c_str(),
                    first ? "  <- predicted first" : "");
    }
    out += buf;
  }
  if (info.warm_started_weights > 0) {
    std::snprintf(buf, sizeof(buf),
                  "warm-started weights: %llu (from cached prior runs)\n",
                  static_cast<unsigned long long>(info.warm_started_weights));
    out += buf;
  }
  out +=
      "join order beyond each component's first edge is chosen at run "
      "time (re-weighted after every edge execution); run \\profile to "
      "see the order a real execution took.\n"
      "plan tail: project for-vars -> dedup -> doc-order sort -> "
      "project return var.\n";
  return out;
}

std::vector<QueryResult> Engine::RunBatch(
    const std::vector<std::string>& queries, size_t concurrency) {
  // An empty batch must not touch the pool (or, with concurrency 0 on
  // an idle engine, the semaphore below): return immediately.
  if (queries.empty()) return {};
  if (concurrency == 0 || concurrency > pool_.num_threads()) {
    concurrency = pool_.num_threads();
  }
  // Bounds the number of in-flight batch queries to `concurrency`.
  std::counting_semaphore<> limiter(static_cast<std::ptrdiff_t>(concurrency));
  std::vector<std::future<QueryResult>> futures;
  futures.reserve(queries.size());
  for (const std::string& q : queries) {
    // Sequence numbers are assigned here, in input order, so a batch is
    // reproducible regardless of how the pool interleaves execution.
    uint64_t seq = next_sequence_.fetch_add(1);
    limiter.acquire();
    futures.push_back(pool_.Async([this, &q, seq, &limiter]() {
      // RAII so the slot frees even if Execute throws.
      struct Slot {
        std::counting_semaphore<>* limiter;
        ~Slot() { limiter->release(); }
      } slot{&limiter};
      QueryRequest req;
      req.text = q;
      return Execute(req, seq).result;
    }));
  }
  std::vector<QueryResult> out;
  out.reserve(queries.size());
  for (auto& f : futures) out.push_back(f.get());
  return out;
}

QueryResult Engine::ExecuteQuery(const std::string& text, uint64_t seq,
                                 obs::TraceLevel trace_level,
                                 bool allow_result_replay,
                                 const QueryLimits* limits_in,
                                 std::string_view client_tag) {
  StopWatch watch;
  QueryResult out;
  out.sequence = seq;

  // --- query governance (DESIGN.md §13) -------------------------------------
  // The deadline is armed before admission so time spent queued counts
  // against it; the budget meters every query (limit 0 never latches),
  // so peak-footprint stats stay meaningful even ungoverned.
  const QueryLimits limits =
      limits_in != nullptr ? *limits_in : options_.default_limits;
  MemoryBudget budget(limits.memory_budget_bytes);
  CancellationToken token;
  token.set_budget(&budget);
  if (limits.deadline_ms > 0) {
    token.ArmDeadline(
        Deadline::AfterMillis(static_cast<int64_t>(limits.deadline_ms)));
  }

  // Registered before admission so Kill() reaches queued queries too;
  // the guard unregisters on every return path (the token is on this
  // stack frame, so the map entry must not outlive it).
  {
    std::lock_guard<std::mutex> lock(active_mu_);
    active_.emplace(seq, &token);
  }
  struct ActiveGuard {
    Engine* engine;
    uint64_t seq;
    ~ActiveGuard() {
      std::lock_guard<std::mutex> lock(engine->active_mu_);
      engine->active_.erase(seq);
    }
  } active_guard{this, seq};

  // Classifies the governance outcome of a finished record: at most one
  // flag, derived from the status the query is returning with.
  auto classify = [&](QueryRecord rec) {
    rec.memory_bytes = budget.used();
    switch (out.status.code()) {
      case StatusCode::kCancelled:
        rec.cancelled = true;
        break;
      case StatusCode::kDeadlineExceeded:
        rec.deadline_exceeded = true;
        break;
      case StatusCode::kResourceExhausted:
        rec.budget_exceeded = true;
        break;
      default:
        break;
    }
    return rec;
  };

  // The flight recorder. Off (the default) allocates nothing; every
  // instrumentation site below and in the layers underneath is a
  // single null check.
  std::shared_ptr<obs::QueryTrace> trace;
  uint32_t root_span = 0;
  if (trace_level != obs::TraceLevel::kOff) {
    trace = std::make_shared<obs::QueryTrace>(trace_level);
    root_span = trace->BeginSpan("query");
    trace->AttrNum(root_span, "seq", static_cast<double>(seq));
    if (!client_tag.empty()) {
      trace->AttrStr(root_span, "client_tag", std::string(client_tag));
    }
    if (limits.deadline_ms > 0) {
      trace->AttrNum(root_span, "deadline_ms", limits.deadline_ms);
    }
    if (limits.memory_budget_bytes > 0) {
      trace->AttrNum(root_span, "memory_budget_bytes",
                     static_cast<double>(limits.memory_budget_bytes));
    }
  }
  // Closes the root span and hands the trace to the result on every
  // return path; also the single site stamping the budget meter into
  // the result.
  auto finish_trace = [&]() {
    out.memory_bytes = budget.used();
    if (trace != nullptr) {
      trace->AttrStr(root_span, "status",
                     out.ok() ? "ok" : out.status.ToString());
      trace->AttrNum(root_span, "memory_bytes",
                     static_cast<double>(out.memory_bytes));
      trace->EndSpan(root_span);
      out.trace = std::move(trace);
    }
  };

  // Bounded admission: when a gate is configured, wait (within the
  // deadline) for an execution slot; shed immediately when the wait
  // queue is full. The ticket holds the slot for the whole execution.
  AdmissionGate::Ticket admission;
  if (options_.max_concurrent_queries > 0) {
    obs::ScopedSpan admit_span(trace.get(), "admission");
    Result<AdmissionGate::Ticket> ticket = gate_.Admit(token.deadline());
    if (!ticket.ok()) {
      out.status = ticket.status();
      out.wall_ms = watch.ElapsedMillis();
      QueryRecord rec{.latency_ms = out.wall_ms, .failed = true};
      // kResourceExhausted here means the queue was full (shed, the
      // query never ran) — distinct from a budget trip; anything else
      // is the deadline lapsing while queued.
      if (out.status.code() == StatusCode::kResourceExhausted) {
        rec.shed = true;
      } else {
        rec.deadline_exceeded = true;
      }
      stats_.Record(rec);
      finish_trace();
      return out;
    }
    admission = std::move(*ticket);
  }

  // Test-only fault injection (compiled out without ROX_FAILPOINTS):
  // fail the query right after admission, before it touches any state.
  if (ROX_FAILPOINT_HIT("engine.execute")) {
    out.status = Status::Internal("failpoint engine.execute fired");
    out.wall_ms = watch.ElapsedMillis();
    stats_.Record(classify({.latency_ms = out.wall_ms, .failed = true}));
    finish_trace();
    return out;
  }

  // A query cancelled or past deadline before doing any work (e.g. the
  // gate is off but the deadline already lapsed) exits here.
  if (Status early = token.Check(); !early.ok()) {
    out.status = early;
    out.wall_ms = watch.ElapsedMillis();
    stats_.Record(classify({.latency_ms = out.wall_ms, .failed = true}));
    finish_trace();
    return out;
  }

  // Pin the published epoch for the whole execution: the snapshot (and
  // the sharded view / fan-out bundle packaged with it) stays alive
  // even if AddDocuments/RemoveDocument publish successors mid-run.
  auto st = Published();
  const uint64_t epoch = st->corpus->epoch();
  CorpusSnapshot snapshot(st->corpus);
  out.epoch = epoch;
  out.snapshot = st->corpus;
  if (trace != nullptr) {
    trace->AttrNum(root_span, "epoch", static_cast<double>(epoch));
  }

  const std::string key = QueryCache::Normalize(text);
  std::shared_ptr<const xq::CompiledQuery> compiled;
  std::vector<double> warm_weights;
  bool have_warm = false;

  if (options_.enable_cache) {
    obs::ScopedSpan cache_span(trace.get(), "cache_lookup");
    std::lock_guard<std::mutex> lock(cache_mu_);
    CacheEntry* entry = cache_.Lookup(epoch, key);
    if (entry != nullptr && entry->epoch != epoch) {
      // Unreachable by construction (the epoch is part of the key);
      // counted defensively and never served.
      stats_.RecordStaleCacheHit();
      entry = nullptr;
    }
    if (entry != nullptr) {
      out.plan_cache_hit = true;
      compiled = entry->compiled;
      if (options_.cache_results && allow_result_replay &&
          entry->result != nullptr) {
        // The row cap applies to replays too: the memoized result is
        // the result this query would produce, so an over-cap replay
        // fails exactly like an over-cap execution — without running.
        if (limits.max_result_rows > 0 &&
            entry->result->size() > limits.max_result_rows) {
          out.status = Status::ResourceExhausted(
              "query result exceeds max_result_rows limit");
          out.wall_ms = watch.ElapsedMillis();
          stats_.Record(classify({.latency_ms = out.wall_ms,
                                  .failed = true,
                                  .plan_cache_hit = true}));
          finish_trace();
          return out;
        }
        out.compiled = compiled;
        out.items = entry->result;
        out.result_doc =
            compiled->graph.vertex(compiled->return_vertex).doc;
        out.result_cache_hit = true;
        cache_span.AttrStr("plan_cache", "hit");
        cache_span.AttrStr("result_cache", "hit");
        out.wall_ms = watch.ElapsedMillis();
        stats_.Record({.latency_ms = out.wall_ms,
                       .plan_cache_hit = true,
                       .result_cache_hit = true});
        finish_trace();
        return out;
      }
      if (options_.warm_start && !entry->warm_edge_weights.empty()) {
        warm_weights = entry->warm_edge_weights;  // copy out under lock
        have_warm = true;
      }
    }
    cache_span.AttrStr("plan_cache", entry != nullptr ? "hit" : "miss");
    cache_span.AttrStr("warm_weights", have_warm ? "hit" : "miss");
  }

  bool compiled_now = false;
  if (compiled == nullptr) {
    // Parse and compile separately so each gets its own span; the
    // combined xq::CompileXQuery(text) overload is exactly these two
    // calls.
    Result<xq::AstQuery> ast = [&]() {
      obs::ScopedSpan parse_span(trace.get(), "parse");
      return xq::ParseXQuery(text);
    }();
    Result<xq::CompiledQuery> result =
        ast.ok() ? [&]() {
          obs::ScopedSpan compile_span(trace.get(), "compile");
          return xq::CompileXQuery(snapshot, *ast, options_.compile);
        }()
                 : Result<xq::CompiledQuery>(ast.status());
    if (!result.ok()) {
      out.status = result.status();
      out.wall_ms = watch.ElapsedMillis();
      stats_.Record({.latency_ms = out.wall_ms,
                     .failed = true,
                     .plan_cache_miss = true});
      finish_trace();
      return out;
    }
    compiled =
        std::make_shared<const xq::CompiledQuery>(std::move(*result));
    compiled_now = true;
    if (options_.enable_cache) {
      std::lock_guard<std::mutex> lock(cache_mu_);
      // A concurrent miss on the same query may have raced us here and
      // already run to completion — never replace an entry that exists,
      // or its learned weights, memoized result and hit count are lost.
      if (cache_.Lookup(epoch, key, /*count_hit=*/false) == nullptr) {
        cache_.Insert(epoch, key, CacheEntry{compiled, {}, nullptr});
      }
    }
  }
  out.compiled = compiled;
  out.result_doc = compiled->graph.vertex(compiled->return_vertex).doc;

  RoxOptions rox = options_.rox;
  rox.seed = MixSeed(options_.rox.seed, seq);
  rox.lazy_materialization =
      options_.lazy_materialization && options_.rox.lazy_materialization;
  if (st->sharded != nullptr) rox.sharded = &st->exec;
  rox.query_trace = trace.get();
  // Hand the whole pipeline its stop signal and allocation meter: the
  // optimizer polls the token at round/edge boundaries, kernels poll it
  // amortized in their emission loops, and the run's column arena
  // charges the budget.
  rox.cancel = &token;
  rox.budget = &budget;
  std::vector<double> learned;
  RoxStats rox_stats;
  Result<std::vector<Pre>> items = [&]() {
    obs::ScopedSpan exec_span(trace.get(), "execute");
    auto r = xq::RunXQuery(snapshot, *compiled, rox, &rox_stats,
                           have_warm ? &warm_weights : nullptr, &learned);
    if (exec_span.armed()) {
      exec_span.AttrNum("edges_executed",
                        static_cast<double>(rox_stats.edges_executed));
      exec_span.AttrNum("sampled_tuples",
                        static_cast<double>(rox_stats.sampled_tuples));
      exec_span.AttrNum("gather_bytes",
                        static_cast<double>(rox_stats.gather.bytes_gathered));
      exec_span.AttrNum("arena_bytes",
                        static_cast<double>(rox_stats.arena_bytes));
      exec_span.AttrNum("fanouts",
                        static_cast<double>(rox_stats.sharded.fanouts));
    }
    return r;
  }();
  out.rox_stats = rox_stats;
  out.warm_started = rox_stats.warm_started_weights > 0;
  if (!items.ok()) {
    out.status = items.status();
    out.wall_ms = watch.ElapsedMillis();
    stats_.Record(classify({.latency_ms = out.wall_ms,
                            .failed = true,
                            .plan_cache_hit = out.plan_cache_hit,
                            .plan_cache_miss = compiled_now}));
    finish_trace();
    return out;
  }
  // Final governance checkpoint: a trip that landed after the last
  // in-run poll (e.g. a budget latch during final gather) must not
  // surface as OK — deadline/budget semantics are "the whole query,
  // bounded", not "the parts that happened to poll".
  if (Status late = token.Check(); !late.ok()) {
    out.status = late;
    out.wall_ms = watch.ElapsedMillis();
    stats_.Record(classify({.latency_ms = out.wall_ms,
                            .failed = true,
                            .plan_cache_hit = out.plan_cache_hit,
                            .plan_cache_miss = compiled_now}));
    finish_trace();
    return out;
  }
  if (limits.max_result_rows > 0 &&
      items->size() > limits.max_result_rows) {
    // The run completed but produced more rows than the caller is
    // willing to accept; fail without caching (a capped client must
    // not poison the shared result cache with its refusal).
    out.status = Status::ResourceExhausted(
        "query result exceeds max_result_rows limit");
    out.wall_ms = watch.ElapsedMillis();
    stats_.Record(classify({.latency_ms = out.wall_ms,
                            .failed = true,
                            .plan_cache_hit = out.plan_cache_hit,
                            .plan_cache_miss = compiled_now}));
    finish_trace();
    return out;
  }
  out.items = std::make_shared<const std::vector<Pre>>(std::move(*items));

  if (options_.enable_cache &&
      epoch == current_epoch_.load(std::memory_order_acquire)) {
    // Write learned weights / the memoized result back only while our
    // epoch is still the published one. A publish can still race in
    // between the check and the insert; that is harmless — the entry
    // is epoch-keyed, so the worst case is a dead old-epoch entry
    // occupying one LRU slot until evicted, never a stale hit.
    std::lock_guard<std::mutex> lock(cache_mu_);
    CacheEntry* entry = cache_.Lookup(epoch, key, /*count_hit=*/false);
    if (entry == nullptr) {
      // Evicted (or invalidated) while we ran; re-insert so the work
      // is not lost.
      entry = cache_.Insert(epoch, key, CacheEntry{compiled, {}, nullptr});
    }
    entry->warm_edge_weights = std::move(learned);
    if (options_.cache_results) entry->result = out.items;
  }

  out.wall_ms = watch.ElapsedMillis();
  stats_.Record({.latency_ms = out.wall_ms,
                 .plan_cache_hit = out.plan_cache_hit,
                 .plan_cache_miss = compiled_now,
                 .rox = &rox_stats});
  finish_trace();
  return out;
}

std::vector<QueryCache::Listing> Engine::CacheContents() const {
  std::lock_guard<std::mutex> lock(cache_mu_);
  return cache_.List();
}

size_t Engine::CacheSize() const {
  std::lock_guard<std::mutex> lock(cache_mu_);
  return cache_.size();
}

uint64_t Engine::CacheEvictions() const {
  std::lock_guard<std::mutex> lock(cache_mu_);
  return cache_.evictions();
}

void Engine::ClearCache() {
  std::lock_guard<std::mutex> lock(cache_mu_);
  cache_.Clear();
}

}  // namespace rox::engine
