#include "engine/engine.h"

#include <algorithm>
#include <cstdio>
#include <semaphore>
#include <utility>

#include "common/timer.h"

namespace rox::engine {

namespace {

// SplitMix64 finalizer: decorrelates the per-query RNG streams derived
// from (base seed, sequence number).
uint64_t MixSeed(uint64_t base, uint64_t seq) {
  uint64_t z = base + 0x9e3779b97f4a7c15ULL * (seq + 1);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

}  // namespace

std::string EngineStats::ToString() const {
  char buf[1024];
  std::snprintf(
      buf, sizeof(buf),
      "queries: %llu ok, %llu failed in %.2fs (%.1f q/s)\n"
      "latency: p50 %.2f ms, p95 %.2f ms, mean %.2f ms, max %.2f ms\n"
      "plan cache: %llu hits / %llu misses (%.0f%% hit rate)\n"
      "result cache: %llu replays (%.0f%% of completed)\n"
      "warm starts: %llu runs reused %llu edge weights\n"
      "optimizer: %llu edges executed, sampling %.1f ms, execution %.1f ms\n"
      "materialization: %llu gathers, %.2f MB gathered, peak intermediate "
      "%llu rows",
      static_cast<unsigned long long>(completed),
      static_cast<unsigned long long>(failed), wall_seconds, qps(), p50_ms,
      p95_ms, mean_ms, max_ms,
      static_cast<unsigned long long>(plan_cache_hits),
      static_cast<unsigned long long>(plan_cache_misses),
      100 * plan_hit_rate(),
      static_cast<unsigned long long>(result_cache_hits),
      100 * result_hit_rate(),
      static_cast<unsigned long long>(warm_started_runs),
      static_cast<unsigned long long>(warm_started_weights),
      static_cast<unsigned long long>(edges_executed), sampling_ms,
      execution_ms, static_cast<unsigned long long>(gather_count),
      static_cast<double>(bytes_gathered) / (1024.0 * 1024.0),
      static_cast<unsigned long long>(peak_intermediate_rows));
  std::string out = buf;
  if (num_shards > 1) {
    std::snprintf(buf, sizeof(buf),
                  "\nshards: %zu, %llu fan-out steps; rows per shard:",
                  num_shards,
                  static_cast<unsigned long long>(sharded.fanouts));
    out += buf;
    for (uint64_t rows : sharded.shard_rows) {
      std::snprintf(buf, sizeof(buf), " %llu",
                    static_cast<unsigned long long>(rows));
      out += buf;
    }
  }
  return out;
}

Engine::Engine(Corpus corpus, EngineOptions options)
    : corpus_(std::move(corpus)),
      options_(options),
      cache_(options.cache_capacity),
      pool_(options.num_threads) {
  if (options_.num_shards > 1) {
    size_t workers = options_.shard_threads > 0 ? options_.shard_threads
                                                : options_.num_shards;
    // An absurd shard count must not translate into an absurd thread
    // count: std::thread construction throws on resource exhaustion
    // and nothing above us could do better than crash. ParallelFor
    // queues the excess iterations, so capping workers only bounds
    // parallelism, never correctness.
    constexpr size_t kMaxShardWorkers = 64;
    workers = std::min(workers, kMaxShardWorkers);
    shard_pool_ = std::make_unique<ThreadPool>(workers);
    sharded_corpus_ = std::make_unique<ShardedCorpus>(
        corpus_, options_.num_shards, shard_pool_.get());
    sharded_exec_.shards = sharded_corpus_.get();
    sharded_exec_.pool = shard_pool_.get();
    sharded_exec_.sample_shard = options_.sample_shard;
  }
}

Engine::~Engine() = default;

std::future<QueryResult> Engine::Submit(std::string query_text) {
  uint64_t seq = next_sequence_.fetch_add(1);
  return pool_.Async([this, text = std::move(query_text), seq]() {
    return Execute(text, seq);
  });
}

QueryResult Engine::Run(std::string query_text) {
  return Execute(query_text, next_sequence_.fetch_add(1));
}

std::vector<QueryResult> Engine::RunBatch(
    const std::vector<std::string>& queries, size_t concurrency) {
  if (concurrency == 0 || concurrency > pool_.num_threads()) {
    concurrency = pool_.num_threads();
  }
  // Bounds the number of in-flight batch queries to `concurrency`.
  std::counting_semaphore<> limiter(static_cast<std::ptrdiff_t>(concurrency));
  std::vector<std::future<QueryResult>> futures;
  futures.reserve(queries.size());
  for (const std::string& q : queries) {
    // Sequence numbers are assigned here, in input order, so a batch is
    // reproducible regardless of how the pool interleaves execution.
    uint64_t seq = next_sequence_.fetch_add(1);
    limiter.acquire();
    futures.push_back(pool_.Async([this, &q, seq, &limiter]() {
      // RAII so the slot frees even if Execute throws.
      struct Slot {
        std::counting_semaphore<>* limiter;
        ~Slot() { limiter->release(); }
      } slot{&limiter};
      return Execute(q, seq);
    }));
  }
  std::vector<QueryResult> out;
  out.reserve(queries.size());
  for (auto& f : futures) out.push_back(f.get());
  return out;
}

QueryResult Engine::Execute(const std::string& text, uint64_t seq) {
  StopWatch watch;
  QueryResult out;
  out.sequence = seq;

  const std::string key = QueryCache::Normalize(text);
  std::shared_ptr<const xq::CompiledQuery> compiled;
  std::vector<double> warm_weights;
  bool have_warm = false;

  if (options_.enable_cache) {
    std::lock_guard<std::mutex> lock(cache_mu_);
    if (CacheEntry* entry = cache_.Lookup(key)) {
      out.plan_cache_hit = true;
      compiled = entry->compiled;
      if (options_.cache_results && entry->result != nullptr) {
        out.compiled = compiled;
        out.items = entry->result;
        out.result_doc =
            compiled->graph.vertex(compiled->return_vertex).doc;
        out.result_cache_hit = true;
        out.wall_ms = watch.ElapsedMillis();
        stats_.Record({.latency_ms = out.wall_ms,
                       .plan_cache_hit = true,
                       .result_cache_hit = true});
        return out;
      }
      if (options_.warm_start && !entry->warm_edge_weights.empty()) {
        warm_weights = entry->warm_edge_weights;  // copy out under lock
        have_warm = true;
      }
    }
  }

  bool compiled_now = false;
  if (compiled == nullptr) {
    auto result = xq::CompileXQuery(corpus_, text, options_.compile);
    if (!result.ok()) {
      out.status = result.status();
      out.wall_ms = watch.ElapsedMillis();
      stats_.Record({.latency_ms = out.wall_ms,
                     .failed = true,
                     .plan_cache_miss = true});
      return out;
    }
    compiled =
        std::make_shared<const xq::CompiledQuery>(std::move(*result));
    compiled_now = true;
    if (options_.enable_cache) {
      std::lock_guard<std::mutex> lock(cache_mu_);
      // A concurrent miss on the same query may have raced us here and
      // already run to completion — never replace an entry that exists,
      // or its learned weights, memoized result and hit count are lost.
      if (cache_.Lookup(key, /*count_hit=*/false) == nullptr) {
        cache_.Insert(key, CacheEntry{compiled, {}, nullptr});
      }
    }
  }
  out.compiled = compiled;
  out.result_doc = compiled->graph.vertex(compiled->return_vertex).doc;

  RoxOptions rox = options_.rox;
  rox.seed = MixSeed(options_.rox.seed, seq);
  rox.lazy_materialization =
      options_.lazy_materialization && options_.rox.lazy_materialization;
  if (sharded_corpus_ != nullptr) rox.sharded = &sharded_exec_;
  std::vector<double> learned;
  RoxStats rox_stats;
  auto items = xq::RunXQuery(corpus_, *compiled, rox, &rox_stats,
                             have_warm ? &warm_weights : nullptr, &learned);
  out.rox_stats = rox_stats;
  out.warm_started = rox_stats.warm_started_weights > 0;
  if (!items.ok()) {
    out.status = items.status();
    out.wall_ms = watch.ElapsedMillis();
    stats_.Record({.latency_ms = out.wall_ms,
                   .failed = true,
                   .plan_cache_hit = out.plan_cache_hit,
                   .plan_cache_miss = compiled_now});
    return out;
  }
  out.items = std::make_shared<const std::vector<Pre>>(std::move(*items));

  if (options_.enable_cache) {
    std::lock_guard<std::mutex> lock(cache_mu_);
    CacheEntry* entry = cache_.Lookup(key, /*count_hit=*/false);
    if (entry == nullptr) {
      // Evicted while we ran; re-insert so the work is not lost.
      entry = cache_.Insert(key, CacheEntry{compiled, {}, nullptr});
    }
    entry->warm_edge_weights = std::move(learned);
    if (options_.cache_results) entry->result = out.items;
  }

  out.wall_ms = watch.ElapsedMillis();
  stats_.Record({.latency_ms = out.wall_ms,
                 .plan_cache_hit = out.plan_cache_hit,
                 .plan_cache_miss = compiled_now,
                 .rox = &rox_stats});
  return out;
}

std::vector<QueryCache::Listing> Engine::CacheContents() const {
  std::lock_guard<std::mutex> lock(cache_mu_);
  return cache_.List();
}

size_t Engine::CacheSize() const {
  std::lock_guard<std::mutex> lock(cache_mu_);
  return cache_.size();
}

uint64_t Engine::CacheEvictions() const {
  std::lock_guard<std::mutex> lock(cache_mu_);
  return cache_.evictions();
}

void Engine::ClearCache() {
  std::lock_guard<std::mutex> lock(cache_mu_);
  cache_.Clear();
}

}  // namespace rox::engine
