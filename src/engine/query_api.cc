#include "engine/query_api.h"

#include <cstdio>

#include "xml/parser.h"

namespace rox::engine {

namespace {

void AppendQuotedString(std::string* out, std::string_view s) {
  out->push_back('"');
  obs::AppendJsonEscaped(out, s);
  out->push_back('"');
}

void AppendKey(std::string* out, std::string_view key) {
  AppendQuotedString(out, key);
  out->append(": ");
}

void AppendUint(std::string* out, uint64_t v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%llu",
                static_cast<unsigned long long>(v));
  out->append(buf);
}

void AppendMillis(std::string* out, double ms) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.3f", ms);
  out->append(buf);
}

}  // namespace

const char* QueryModeName(QueryMode mode) {
  switch (mode) {
    case QueryMode::kExecute:
      return "execute";
    case QueryMode::kExplain:
      return "explain";
    case QueryMode::kProfile:
      return "profile";
  }
  return "execute";
}

bool ParseQueryMode(std::string_view text, QueryMode* out) {
  std::string lower(text);
  for (char& c : lower) {
    if (c >= 'A' && c <= 'Z') c = static_cast<char>(c - 'A' + 'a');
  }
  if (lower == "execute") {
    *out = QueryMode::kExecute;
  } else if (lower == "explain") {
    *out = QueryMode::kExplain;
  } else if (lower == "profile") {
    *out = QueryMode::kProfile;
  } else {
    return false;
  }
  return true;
}

std::vector<std::string> SerializeResultRows(const QueryResult& result,
                                             size_t max_rows) {
  std::vector<std::string> rows;
  if (result.items == nullptr || result.snapshot == nullptr ||
      result.result_doc == kInvalidDocId) {
    return rows;
  }
  size_t n = result.items->size();
  if (max_rows > 0 && max_rows < n) n = max_rows;
  rows.reserve(n);
  const Document& doc = result.snapshot->doc(result.result_doc);
  for (size_t i = 0; i < n; ++i) {
    rows.push_back(SerializeSubtree(doc, (*result.items)[i]));
  }
  return rows;
}

std::string QueryResponse::ToJson(const ResponseJsonOptions& opts) const {
  std::string out;
  out.reserve(256);
  out.append("{\n  ");
  AppendKey(&out, "status");
  out.append("{");
  AppendKey(&out, "code");
  AppendQuotedString(&out, StatusCodeName(status.code()));
  out.append(", ");
  AppendKey(&out, "message");
  AppendQuotedString(&out, status.message());
  out.append("},\n  ");
  AppendKey(&out, "mode");
  AppendQuotedString(&out, QueryModeName(mode));
  out.append(",\n  ");
  AppendKey(&out, "sequence");
  AppendUint(&out, result.sequence);
  out.append(",\n  ");
  AppendKey(&out, "epoch");
  AppendUint(&out, result.epoch);

  const size_t total_rows =
      result.items != nullptr ? result.items->size() : 0;
  out.append(",\n  ");
  AppendKey(&out, "row_count");
  AppendUint(&out, total_rows);
  out.append(",\n  ");
  AppendKey(&out, "rows");
  out.append("[");
  std::vector<std::string> rows = SerializeResultRows(result, opts.max_rows);
  for (size_t i = 0; i < rows.size(); ++i) {
    out.append(i == 0 ? "\n    " : ",\n    ");
    AppendQuotedString(&out, rows[i]);
  }
  out.append(rows.empty() ? "]" : "\n  ]");
  if (rows.size() < total_rows) {
    out.append(",\n  ");
    AppendKey(&out, "rows_truncated");
    out.append("true");
  }

  if (mode == QueryMode::kExplain) {
    out.append(",\n  ");
    AppendKey(&out, "explain");
    AppendQuotedString(&out, explain_text);
  }
  if (!client_tag.empty()) {
    out.append(",\n  ");
    AppendKey(&out, "client_tag");
    AppendQuotedString(&out, client_tag);
  }

  out.append(",\n  ");
  AppendKey(&out, "stats");
  out.append("{");
  AppendKey(&out, "plan_cache_hit");
  out.append(result.plan_cache_hit ? "true" : "false");
  out.append(", ");
  AppendKey(&out, "result_cache_hit");
  out.append(result.result_cache_hit ? "true" : "false");
  out.append(", ");
  AppendKey(&out, "warm_started");
  out.append(result.warm_started ? "true" : "false");
  out.append(", ");
  AppendKey(&out, "edges_executed");
  AppendUint(&out, result.rox_stats.edges_executed);
  if (opts.include_timings) {
    out.append(", ");
    AppendKey(&out, "wall_ms");
    AppendMillis(&out, result.wall_ms);
    out.append(", ");
    AppendKey(&out, "sampling_ms");
    AppendMillis(&out, result.rox_stats.sampling_time.TotalMillis());
    out.append(", ");
    AppendKey(&out, "execution_ms");
    AppendMillis(&out, result.rox_stats.execution_time.TotalMillis());
    out.append(", ");
    AppendKey(&out, "memory_bytes");
    AppendUint(&out, result.memory_bytes);
  }
  out.append("}");

  if (opts.include_trace && result.trace != nullptr) {
    out.append(",\n  ");
    AppendKey(&out, "trace");
    out.append(result.trace->ToJson());
  }
  out.append("\n}\n");
  return out;
}

}  // namespace rox::engine
