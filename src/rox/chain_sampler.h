// Chain sampling — Algorithm 2 of the paper.
//
// Starting from the un-executed edge with the smallest weight, explores
// the branching path segments around its cheaper endpoint breadth-first,
// feeding the (cut-off) sample output of each sampled operator into the
// sampling of the next. After every round the pairwise stopping
// condition
//
//     cost(pi) + sf(pi) * cost(pj) <= cost(pj)        for all j != i
//
// is checked: if some segment pi satisfies it, executing pi first is
// guaranteed cheaper than any order that begins with another segment,
// so exploration stops and pi is returned for execution. If the
// branches are exhausted without a strict winner, the relaxed pairwise
// rule (line 34) picks the best candidate.

#ifndef ROX_ROX_CHAIN_SAMPLER_H_
#define ROX_ROX_CHAIN_SAMPLER_H_

#include <vector>

#include "rox/state.h"

namespace rox {

// One explored path segment and its bookkeeping (§3.1).
struct PathSegment {
  std::vector<EdgeId> edges;
  VertexId stop_vertex = kInvalidVertexId;
  std::vector<Pre> input;  // I(p): sample flowing into the next round
  double cost = 0.0;       // Σ estimated intermediate result cardinalities
  double sf = 1.0;         // scale factor (join hit ratio) of the segment
};

// Diagnostic trace of one ChainSample invocation (used by the Table 2
// bench to print per-round (cost, sf) values).
struct ChainSampleTrace {
  EdgeId seed_edge = kInvalidEdgeId;
  VertexId source = kInvalidVertexId;
  int rounds = 0;
  bool stopped_early = false;  // stopping condition (line 26) fired
  // Snapshot of (edges, cost, sf) per path per round.
  struct RoundSnapshot {
    std::vector<PathSegment> paths;  // inputs omitted
  };
  std::vector<RoundSnapshot> round_snapshots;
};

class ChainSampler {
 public:
  explicit ChainSampler(RoxState& state) : state_(state) {}

  // Runs Algorithm 2 and returns the ordered edge list of the winning
  // path segment (at least one edge). If no edge has a weight yet,
  // returns an empty vector.
  std::vector<EdgeId> Run(ChainSampleTrace* trace = nullptr);

  // The strict stopping rule (lines 24-31):
  //   cost(pi) + sf(pi)·cost(pj) <= cost(pj)   for all j != i.
  // Returns the winning path index or -1. Public for testability: the
  // paper's Table 2 and Figure 2 decisions are unit-tested against it.
  static int FindStrictWinner(const std::vector<PathSegment>& paths);
  // The relaxed final rule (lines 32-39):
  //   cost(pi) + sf(pi)·cost(pj) <= cost(pj) + sf(pj)·cost(pi).
  // Falls back to the minimum cost path if no pairwise winner exists.
  static int FindRelaxedWinner(const std::vector<PathSegment>& paths);

 private:
  // True if `p` can be extended: its stop vertex has an un-executed
  // edge that is not already part of `p`.
  bool Expandable(const PathSegment& p) const;

  std::vector<EdgeId> ExpandableEdges(const PathSegment& p) const;

  RoxState& state_;
};

}  // namespace rox

#endif  // ROX_ROX_CHAIN_SAMPLER_H_
