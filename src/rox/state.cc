#include "rox/state.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <numeric>
#include <unordered_map>
#include <unordered_set>

#include "common/check.h"
#include "common/str_util.h"
#include "common/thread_pool.h"
#include "exec/value_join.h"

namespace rox {

RoxState::RoxState(CorpusSnapshot snapshot, const JoinGraph& graph,
                   const RoxOptions& options)
    : snapshot_(std::move(snapshot)),
      corpus_(*snapshot_),
      graph_(graph),
      options_(options),
      rng_(options.seed),
      vertices_(graph.VertexCount()),
      edges_(graph.EdgeCount()) {
  // Arena reservations (lazy views, assembly intermediates) count
  // against the query's budget; the latch surfaces at the next token
  // checkpoint (DESIGN.md §13).
  arena_.set_budget(options_.budget);
}

// --- index access -----------------------------------------------------------

namespace {

// One vertex's index lookup against a given pair of indexes (the full
// per-document ones, or one shard's).
Result<std::vector<Pre>> LookupVertex(const Vertex& vx, const Document& doc,
                                      const ElementIndex& eidx,
                                      const ValueIndex& vidx) {
  switch (vx.type) {
    case VertexType::kRoot:
      return std::vector<Pre>{0};
    case VertexType::kElement: {
      auto span = eidx.Lookup(vx.name);
      return std::vector<Pre>(span.begin(), span.end());
    }
    case VertexType::kText:
      switch (vx.pred.kind) {
        case ValuePredicate::Kind::kEquals: {
          auto span = vidx.TextLookup(vx.pred.equals);
          return std::vector<Pre>(span.begin(), span.end());
        }
        case ValuePredicate::Kind::kRange:
          return vidx.TextRangeLookup(vx.pred.range);
        case ValuePredicate::Kind::kNotEquals:
        case ValuePredicate::Kind::kAnyOf:
          // Scan the index's document-ordered all-text list; disjuncts
          // and negations do not map onto a single hash/range lookup.
          return FilterByPredicate(doc, vidx.AllTextNodes(), vx.pred);
        case ValuePredicate::Kind::kNone:
          return Status::FailedPrecondition(
              "unrestricted text vertex is not index-selectable");
      }
      break;
    case VertexType::kAttribute: {
      auto span = eidx.LookupAttr(vx.name);
      if (vx.pred.kind == ValuePredicate::Kind::kNone) {
        return std::vector<Pre>(span.begin(), span.end());
      }
      return FilterByPredicate(doc, span, vx.pred);
    }
  }
  return Status::Internal("unhandled vertex type in IndexLookup");
}

}  // namespace

Result<std::vector<Pre>> RoxState::IndexLookup(VertexId v) const {
  const Vertex& vx = graph_.vertex(v);
  const Document& doc = corpus_.doc(vx.doc);
  const ShardedExec* ex = Sharded();
  if (ex == nullptr || vx.type == VertexType::kRoot) {
    return LookupVertex(vx, doc, corpus_.element_index(vx.doc),
                        corpus_.value_index(vx.doc));
  }
  // Per-shard lookups concatenate to exactly the full lookup: shard
  // ranges are contiguous and each per-shard list is sorted.
  const ShardedCorpus& sc = *ex->shards;
  size_t k = sc.num_shards();
  std::vector<std::vector<Pre>> parts(k);
  std::vector<Status> statuses(k, Status::Ok());
  ParallelFor(ex->pool, k, [&](size_t s) {
    auto part = LookupVertex(vx, doc, sc.element_index(vx.doc, s),
                             sc.value_index(vx.doc, s));
    if (part.ok()) {
      parts[s] = std::move(*part);
    } else {
      statuses[s] = part.status();
    }
  });
  std::vector<Pre> out;
  size_t total = 0;
  for (const auto& p : parts) total += p.size();
  out.reserve(total);
  for (size_t s = 0; s < k; ++s) {
    ROX_RETURN_IF_ERROR(statuses[s]);
    out.insert(out.end(), parts[s].begin(), parts[s].end());
  }
  return out;
}

const ElementIndex& RoxState::SamplingElementIndex(DocId doc) const {
  const ShardedExec* ex = Sharded();
  if (ex == nullptr || ex->sample_shard < 0 ||
      static_cast<size_t>(ex->sample_shard) >= ex->shards->num_shards()) {
    return corpus_.element_index(doc);
  }
  return ex->shards->element_index(doc,
                                   static_cast<size_t>(ex->sample_shard));
}

const ValueIndex& RoxState::SamplingValueIndex(DocId doc) const {
  const ShardedExec* ex = Sharded();
  if (ex == nullptr || ex->sample_shard < 0 ||
      static_cast<size_t>(ex->sample_shard) >= ex->shards->num_shards()) {
    return corpus_.value_index(doc);
  }
  return ex->shards->value_index(doc, static_cast<size_t>(ex->sample_shard));
}

double RoxState::IndexCount(VertexId v) const {
  const Vertex& vx = graph_.vertex(v);
  const ElementIndex& eidx = corpus_.element_index(vx.doc);
  const ValueIndex& vidx = corpus_.value_index(vx.doc);
  switch (vx.type) {
    case VertexType::kRoot:
      return 1.0;
    case VertexType::kElement:
      return static_cast<double>(eidx.Count(vx.name));
    case VertexType::kText:
      switch (vx.pred.kind) {
        case ValuePredicate::Kind::kEquals:
          return static_cast<double>(vidx.TextLookup(vx.pred.equals).size());
        case ValuePredicate::Kind::kNotEquals:
          return static_cast<double>(vidx.text_node_count() -
                                     vidx.TextLookup(vx.pred.equals).size());
        case ValuePredicate::Kind::kRange:
          return static_cast<double>(vidx.TextRangeCount(vx.pred.range));
        case ValuePredicate::Kind::kAnyOf: {
          auto r = IndexLookup(v);
          return r.ok() ? static_cast<double>(r.value().size()) : -1.0;
        }
        case ValuePredicate::Kind::kNone:
          return static_cast<double>(vidx.text_node_count());
      }
      break;
    case VertexType::kAttribute: {
      if (vx.pred.kind == ValuePredicate::Kind::kNone) {
        return static_cast<double>(eidx.CountAttr(vx.name));
      }
      auto r = IndexLookup(v);
      return r.ok() ? static_cast<double>(r.value().size()) : -1.0;
    }
  }
  return -1.0;
}

Status RoxState::EnsureTable(VertexId v) {
  VertexState& vs = vertices_[v];
  if (vs.table.has_value()) return Status::Ok();
  if (options_.cancel != nullptr) {
    ROX_RETURN_IF_ERROR(options_.cancel->Check());
  }
  const Vertex& vx = graph_.vertex(v);
  if (!vx.IndexSelectable()) {
    return Status::FailedPrecondition(
        StrCat("vertex ", v, " (", vx.label, ") is not index-selectable"));
  }
  ROX_ASSIGN_OR_RETURN(std::vector<Pre> nodes, IndexLookup(v));
  // Approximate execution (§6): materialize only a uniform fraction of
  // the lookup. Samples stay uniform because SampleWithoutReplacement
  // returns sorted positions (document order preserved).
  if (options_.approximate_fraction > 0 && options_.approximate_fraction < 1) {
    uint64_t k = std::max<uint64_t>(
        options_.tau, static_cast<uint64_t>(
                          nodes.size() * options_.approximate_fraction));
    if (k < nodes.size()) {
      std::vector<uint64_t> keep =
          rng_.SampleWithoutReplacement(nodes.size(), k);
      std::vector<Pre> sampled;
      sampled.reserve(keep.size());
      for (uint64_t i : keep) sampled.push_back(nodes[i]);
      nodes = std::move(sampled);
    }
  }
  vs.card = static_cast<double>(nodes.size());
  vs.table = std::move(nodes);
  std::vector<uint64_t> idx =
      rng_.SampleWithoutReplacement(vs.table->size(), options_.tau);
  vs.sample.clear();
  for (uint64_t i : idx) vs.sample.push_back((*vs.table)[i]);
  return Status::Ok();
}

// --- phase 1 ----------------------------------------------------------------

void RoxState::InitializeSamplesAndWeights() {
  obs::ScopedSpan span(options_.query_trace, "phase1");
  ScopedTimer timer(stats_.sampling_time);
  for (VertexId v = 0; v < graph_.VertexCount(); ++v) {
    // Phase 1 returns void, so a governance trip just stops the loops
    // early; RoxOptimizer::Prepare re-checks the token right after and
    // reports the trip before any weight is trusted.
    if (StopRequested(options_.cancel)) return;
    const Vertex& vx = graph_.vertex(v);
    if (!vx.IndexSelectable()) continue;
    VertexState& vs = vertices_[v];
    // Sample draws go to the designated sample shard (the full indexes
    // by default); cardinalities always come from the full indexes so
    // the w(e) extrapolation card(v) * |sample result| / |S(v)| stays
    // exact. When a contiguous sample shard holds no node of a kind
    // that clusters elsewhere in the document, fall back to a full-
    // index draw rather than leaving the vertex unsampled.
    const ElementIndex& seidx = SamplingElementIndex(vx.doc);
    const ValueIndex& svidx = SamplingValueIndex(vx.doc);
    const ElementIndex& eidx = corpus_.element_index(vx.doc);
    const ValueIndex& vidx = corpus_.value_index(vx.doc);
    switch (vx.type) {
      case VertexType::kRoot:
        vs.sample = {0};
        vs.card = 1.0;
        break;
      case VertexType::kElement:
        vs.sample = seidx.Sample(vx.name, options_.tau, rng_);
        vs.card = static_cast<double>(eidx.Count(vx.name));
        if (vs.sample.empty() && vs.card > 0) {
          vs.sample = eidx.Sample(vx.name, options_.tau, rng_);
        }
        break;
      case VertexType::kText:
        if (vx.pred.kind == ValuePredicate::Kind::kEquals) {
          vs.sample = svidx.SampleText(vx.pred.equals, options_.tau, rng_);
          vs.card =
              static_cast<double>(vidx.TextLookup(vx.pred.equals).size());
          if (vs.sample.empty() && vs.card > 0) {
            vs.sample = vidx.SampleText(vx.pred.equals, options_.tau, rng_);
          }
        } else {
          // Range-/inequality-/disjunction-restricted text vertex: the
          // index materializes the lookup anyway; keep it as T(v). A
          // failure here is a governance trip (EnsureTable checks the
          // token): stop sampling, Prepare reports it.
          if (!EnsureTable(v).ok()) return;
        }
        break;
      case VertexType::kAttribute:
        if (vx.pred.kind == ValuePredicate::Kind::kNone) {
          vs.sample = seidx.SampleAttr(vx.name, options_.tau, rng_);
          vs.card = static_cast<double>(eidx.CountAttr(vx.name));
          if (vs.sample.empty() && vs.card > 0) {
            vs.sample = eidx.SampleAttr(vx.name, options_.tau, rng_);
          }
        } else {
          if (!EnsureTable(v).ok()) return;
        }
        break;
    }
  }
  const std::vector<double>* warm =
      options_.use_warm_start ? options_.warm_edge_weights : nullptr;
  if (warm != nullptr && warm->size() != graph_.EdgeCount()) warm = nullptr;
  for (EdgeId e = 0; e < graph_.EdgeCount(); ++e) {
    if (StopRequested(options_.cancel)) return;
    // Adopt a cached weight only where a cold Phase 1 would have
    // estimated one: edges with at least one index-selectable (sampled)
    // endpoint. Interior edges carry *final* weights from the prior run
    // — post-reduction cardinalities so small that MinWeightEdge would
    // schedule them before either endpoint can be materialized.
    const Edge& edge = graph_.edge(e);
    bool phase1_weightable = graph_.vertex(edge.v1).IndexSelectable() ||
                             graph_.vertex(edge.v2).IndexSelectable();
    if (warm != nullptr && (*warm)[e] >= 0 && phase1_weightable) {
      edges_[e].weight = (*warm)[e];
      ++stats_.warm_started_weights;
    } else {
      edges_[e].weight = EstimateCardinalityLocked(e);
    }
  }
  if (span.armed()) {
    span.AttrNum("edges", static_cast<double>(graph_.EdgeCount()));
    span.AttrNum("warm_weights",
                 static_cast<double>(stats_.warm_started_weights));
    span.AttrNum("sampled_tuples", static_cast<double>(stats_.sampled_tuples));
  }
}

// --- sampled execution --------------------------------------------------------

StepSpec RoxState::StepSpecFrom(EdgeId e, VertexId from) const {
  const Edge& edge = graph_.edge(e);
  ROX_DCHECK(edge.type == EdgeType::kStep);
  VertexId target = edge.Other(from);
  Axis axis = (from == edge.v1) ? edge.axis : ReverseAxis(edge.axis);
  const Vertex& tx = graph_.vertex(target);
  StepSpec spec;
  spec.axis = axis;
  switch (tx.type) {
    case VertexType::kRoot:
      spec.kind = KindTest::kDoc;
      break;
    case VertexType::kElement:
      spec.kind = KindTest::kElem;
      spec.name = tx.name;
      break;
    case VertexType::kText:
      spec.kind = KindTest::kText;
      break;
    case VertexType::kAttribute:
      spec.kind = KindTest::kAttr;
      spec.name = tx.name;
      // Traversing toward an attribute is the attribute axis when the
      // stored axis was child-like.
      if (axis == Axis::kChild) spec.axis = Axis::kAttribute;
      break;
  }
  return spec;
}

bool RoxState::NodeSatisfiesVertex(VertexId v, Pre node) const {
  const Vertex& vx = graph_.vertex(v);
  const Document& doc = corpus_.doc(vx.doc);
  switch (vx.type) {
    case VertexType::kRoot:
      return node == 0;
    case VertexType::kElement:
      return doc.Kind(node) == NodeKind::kElem && doc.Name(node) == vx.name;
    case VertexType::kText:
      if (doc.Kind(node) != NodeKind::kText) return false;
      break;
    case VertexType::kAttribute:
      if (doc.Kind(node) != NodeKind::kAttr || doc.Name(node) != vx.name) {
        return false;
      }
      break;
  }
  return vx.pred.Matches(doc, node);
}

void RoxState::FilterPairsForVertex(VertexId v, JoinPairs& pairs) const {
  const VertexState& vs = vertices_[v];
  const Vertex& vx = graph_.vertex(v);
  bool check_pred = vx.pred.kind != ValuePredicate::Kind::kNone;
  bool check_table = vs.table.has_value();
  if (!check_pred && !check_table) return;
  size_t w = 0;
  for (size_t i = 0; i < pairs.right_nodes.size(); ++i) {
    Pre s = pairs.right_nodes[i];
    if (check_pred && !NodeSatisfiesVertex(v, s)) continue;
    if (check_table &&
        !std::binary_search(vs.table->begin(), vs.table->end(), s)) {
      continue;
    }
    pairs.right_nodes[w] = s;
    pairs.left_rows[w] = pairs.left_rows[i];
    ++w;
  }
  pairs.right_nodes.resize(w);
  pairs.left_rows.resize(w);
}

EdgeSample RoxState::SampleEdgeFrom(EdgeId e, VertexId from,
                                    std::span<const Pre> input,
                                    uint64_t limit) {
  if (options_.query_trace != nullptr &&
      options_.query_trace->full_enabled()) {
    // Cut-off sampled execution: counted, never spanned — Phase 1 and
    // chain sampling issue thousands of these per query.
    options_.query_trace->CountSampleCall(e);
  }
  const Edge& edge = graph_.edge(e);
  VertexId target = edge.Other(from);
  const Vertex& tx = graph_.vertex(target);
  const Document& target_doc = corpus_.doc(tx.doc);
  // The sampled-execution loops (Phase 1, chain sampling, re-weighing)
  // call this thousands of times per query; the Into kernels refill one
  // state-owned scratch buffer instead of allocating per probe.
  JoinPairs& pairs = sample_scratch_;
  if (edge.type == EdgeType::kStep) {
    const ElementIndex* idx = options_.use_index_acceleration
                                  ? &corpus_.element_index(tx.doc)
                                  : nullptr;
    StructuralJoinPairsInto(target_doc, input, StepSpecFrom(e, from), limit,
                            idx, pairs, options_.cancel,
                            options_.vectorized_kernels);
  } else {
    const Vertex& fx = graph_.vertex(from);
    const Document& from_doc = corpus_.doc(fx.doc);
    ValueProbeSpec spec = tx.type == VertexType::kAttribute
                              ? ValueProbeSpec::Attr(tx.name)
                              : ValueProbeSpec::Text();
    CmpOp cmp = edge.CmpFrom(from);
    if (cmp == CmpOp::kEq) {
      ValueIndexJoinPairsInto(from_doc, input, target_doc,
                              corpus_.value_index(tx.doc), spec, limit,
                              pairs, options_.cancel,
                              options_.vectorized_kernels);
    } else {
      // Theta edges sample through the index's sorted runs — still
      // zero-investment w.r.t. the input side (DESIGN.md §11).
      ValueIndexThetaJoinPairsInto(from_doc, input, target_doc,
                                   corpus_.value_index(tx.doc), spec, cmp,
                                   limit, pairs, options_.cancel,
                                   options_.vectorized_kernels);
    }
  }
  FilterPairsForVertex(target, pairs);
  EdgeSample out;
  out.est = pairs.EstimateFullCardinality(input.size());
  out.out_nodes.assign(pairs.right_nodes.begin(), pairs.right_nodes.end());
  stats_.sampled_tuples += out.out_nodes.size();
  return out;
}

double RoxState::EstimateCardinality(EdgeId e) {
  ScopedTimer timer(stats_.sampling_time);
  return EstimateCardinalityLocked(e);
}

double RoxState::EstimateCardinalityLocked(EdgeId e) {
  const Edge& edge = graph_.edge(e);
  // Prefer the endpoint with the smaller cardinality among those that
  // have a sample (§3: "We choose to use the smallest vertex as input
  // for sampling").
  VertexId from = kInvalidVertexId;
  double best_card = -1.0;
  for (VertexId v : {edge.v1, edge.v2}) {
    const VertexState& vs = vertices_[v];
    if (vs.card < 0) continue;  // never sampled
    if (from == kInvalidVertexId || vs.card < best_card) {
      from = v;
      best_card = vs.card;
    }
  }
  if (from == kInvalidVertexId) return -1.0;
  const VertexState& vs = vertices_[from];
  if (vs.card == 0 || vs.sample.empty()) return 0.0;
  EdgeSample s = SampleEdgeFrom(e, from, vs.sample, options_.tau);
  return s.est * vs.card / static_cast<double>(vs.sample.size());
}

// --- full execution -----------------------------------------------------------

Status RoxState::ExecuteEdge(EdgeId e) {
  ROX_CHECK(!edges_[e].executed);
  obs::QueryTrace* qt = options_.query_trace;
  obs::EdgeTrace* et = nullptr;
  if (qt != nullptr && qt->spans_enabled()) {
    et = qt->BeginEdge(e, graph_.EdgeLabel(e));
    // w(e) as last sampled before the decision to execute — the
    // "estimated cardinality" half of the drift payload.
    et->estimated = edges_[e].weight;
    stats_.sharded.ResetLastFanout();
  }
  last_kernel_ = "";
  Status executed = Status::Ok();
  {
    ScopedTimer timer(stats_.execution_time);
    executed = ExecuteEdgeInternal(e);
  }
  if (!executed.ok()) {
    if (et != nullptr) qt->EndEdge();
    return executed;
  }
  edges_[e].executed = true;
  ++stats_.edges_executed;
  stats_.execution_order.push_back(e);
  if (et != nullptr) {
    et->kernel = last_kernel_;
    et->observed = static_cast<double>(edges_[e].ResultRows());
    et->fanout_lanes = stats_.sharded.last_lanes;
    et->lane_rows = stats_.sharded.last_lane_rows;
  }
  UpdateAfterExecution(e);
  if (et != nullptr) {
    const Edge& edge = graph_.edge(e);
    et->card_v1 = vertices_[edge.v1].card;
    et->card_v2 = vertices_[edge.v2].card;
    qt->EndEdge();
  }
  return Status::Ok();
}

Status RoxState::ExecuteEdgeInternal(EdgeId e) {
  const Edge& edge = graph_.edge(e);
  VertexId v1 = edge.v1, v2 = edge.v2;
  if (options_.cancel != nullptr) {
    ROX_RETURN_IF_ERROR(options_.cancel->Check());
  }

  // An equi-join already implied by executed equi-joins (transitivity
  // within the equivalence class) contributes no new constraint. Theta
  // edges are never implied: a<b and b<c constrain a<c but do not
  // equal it, so every theta edge executes.
  if (edge.IsEquiJoin() && EquiJoinImplied(v1, v2)) {
    last_kernel_ = "implied-skip";
    return Status::Ok();
  }

  // Materialize index-selectable loose sides (Algorithm 1, lines 8-12).
  for (VertexId v : {v1, v2}) {
    if (!vertices_[v].table.has_value() &&
        graph_.vertex(v).IndexSelectable()) {
      ROX_RETURN_IF_ERROR(EnsureTable(v));
    }
  }
  if (!vertices_[v1].table.has_value() && !vertices_[v2].table.has_value()) {
    return Status::FailedPrecondition(
        StrCat("edge ", e, ": neither endpoint is materializable"));
  }

  // Context = the materialized side with fewer nodes (overridable by
  // the timed operator selection below).
  VertexId ctx = v1, tgt = v2;
  auto size_of = [&](VertexId v) -> uint64_t {
    return vertices_[v].table.has_value() ? vertices_[v].table->size()
                                          : UINT64_MAX;
  };
  if (!vertices_[v1].table.has_value() ||
      (vertices_[v2].table.has_value() && size_of(v2) < size_of(v1))) {
    ctx = v2;
    tgt = v1;
  }
  if (edge.type == EdgeType::kStep && options_.timed_operator_selection) {
    ctx = ChooseStepDirection(e, ctx);
    tgt = edge.Other(ctx);
  }
  const std::vector<Pre>& ctx_nodes = *vertices_[ctx].table;
  const Vertex& tx = graph_.vertex(tgt);
  const Document& target_doc = corpus_.doc(tx.doc);
  const Document& ctx_doc = corpus_.doc(graph_.vertex(ctx).doc);
  const bool lazy = options_.lazy_materialization;
  const size_t ctx_col = (ctx == v1) ? 0 : 1;

  // Shared tail of both representations. Lazy: filter each lane, adopt
  // the context table as an arena base column (zero-copy; the vertex
  // table is about to be replaced by the semi-join reduction anyway)
  // and flatten the lanes into a view. Eager: merge the lanes (the
  // pre-view code path, byte- and cost-identical) and row-copy R_e.
  auto finish = [&](ShardedJoinParts&& parts) -> Status {
    if (lazy) {
      for (JoinPairs& p : parts.parts) FilterPairsForVertex(tgt, p);
      std::span<const Pre> ctx_base =
          arena_.Adopt(std::move(*vertices_[ctx].table));
      vertices_[ctx].table.reset();
      StoreLazyResult(e, ctx_base, ctx_col, std::move(parts));
    } else {
      JoinPairs pairs = std::move(parts).Merged();
      FilterPairsForVertex(tgt, pairs);
      // Materialize R_e with columns oriented (v1, v2).
      ResultTable r(2);
      std::vector<Pre>& ccol = r.MutableCol(ctx_col);
      ccol.resize(pairs.size());
      for (size_t k = 0; k < pairs.size(); ++k) {
        ccol[k] = ctx_nodes[pairs.left_rows[k]];
      }
      r.MutableCol(1 - ctx_col) = std::move(pairs.right_nodes);
      edges_[e].result = std::move(r);
      if (options_.budget != nullptr) {
        options_.budget->Charge(edges_[e].ResultRows() * 2 * sizeof(Pre));
      }
    }
    RecordIntermediate(edges_[e].ResultRows());
    // A kernel that tripped mid-emission stored a partial R_e through
    // the truncation protocol: report the trip here so the edge is
    // never marked executed with partial pairs.
    if (options_.cancel != nullptr) {
      ROX_RETURN_IF_ERROR(options_.cancel->Check());
    }
    return Status::Ok();
  };

  if (edge.type == EdgeType::kStep) {
    last_kernel_ = "structural";
    const ElementIndex* idx = options_.use_index_acceleration
                                  ? &corpus_.element_index(tx.doc)
                                  : nullptr;
    return finish(ShardedStructuralJoinParts(
        Sharded(), graph_.vertex(ctx).doc, target_doc, ctx_nodes,
        StepSpecFrom(e, ctx), idx, &stats_.sharded, options_.cancel,
        options_.vectorized_kernels));
  }
  const CmpOp cmp = edge.CmpFrom(ctx);
  if (cmp != CmpOp::kEq) {
    // Theta edge: probe the target's sorted run per context row. A
    // materialized (semi-join-reduced) target table builds a private
    // run, usually far smaller than the full index projection; an
    // unmaterialized target probes the index's pre-sorted run and the
    // FilterPairsForVertex call inside finish() applies its predicate.
    // Both sources emit identical per-row sequences (value_join.h), so
    // all execution modes agree byte-for-byte.
    if (vertices_[tgt].table.has_value()) {
      last_kernel_ = "theta-run";
      return finish(ShardedSortThetaJoinParts(
          Sharded(), ctx_doc, ctx_nodes, target_doc, *vertices_[tgt].table,
          cmp, &stats_.sharded, options_.cancel,
          options_.vectorized_kernels));
    }
    last_kernel_ = "theta-index";
    ValueProbeSpec spec = tx.type == VertexType::kAttribute
                              ? ValueProbeSpec::Attr(tx.name)
                              : ValueProbeSpec::Text();
    return finish(ShardedValueIndexThetaJoinParts(
        Sharded(), ctx_doc, ctx_nodes, target_doc,
        corpus_.value_index(tx.doc), spec, cmp, &stats_.sharded,
        options_.cancel, options_.vectorized_kernels));
  }
  if (vertices_[tgt].table.has_value()) {
    // Both ends materialized: pick among the applicable algorithms
    // (hash by default; §6: the prototype times the candidates on a
    // sample and takes the fastest).
    EquiAlgo algo = options_.timed_operator_selection
                        ? ChooseEquiAlgorithm(e, ctx)
                        : EquiAlgo::kHash;
    switch (algo) {
      case EquiAlgo::kHash:
        last_kernel_ = "hash";
        return finish(ShardedHashValueJoinParts(
            Sharded(), ctx_doc, ctx_nodes, target_doc,
            *vertices_[tgt].table, &stats_.sharded, options_.cancel,
            options_.vectorized_kernels));
      case EquiAlgo::kMerge: {
        last_kernel_ = "merge";
        std::vector<Pre> outer_sorted = SortByValueId(ctx_doc, ctx_nodes);
        std::vector<Pre> inner_sorted =
            SortByValueId(target_doc, *vertices_[tgt].table);
        JoinPairs pairs = MergeValueJoinPairs(ctx_doc, outer_sorted,
                                              target_doc, inner_sorted,
                                              options_.cancel,
                                              options_.vectorized_kernels);
        // Re-mapping outer rows back to ctx_nodes positions is
        // unnecessary: R_e only needs the matched *nodes* on both
        // sides, so R_e is built against outer_sorted directly.
        pairs.truncated = false;
        pairs.outer_consumed = outer_sorted.size();
        FilterPairsForVertex(tgt, pairs);
        if (lazy) {
          std::span<const Pre> base = arena_.Adopt(std::move(outer_sorted));
          ResultView v(2, pairs.size());
          v.col(ctx_col) = {
              base.data(), arena_.Adopt(std::move(pairs.left_rows)).data()};
          v.col(1 - ctx_col) = {
              arena_.Adopt(std::move(pairs.right_nodes)).data(), nullptr};
          edges_[e].view = std::move(v);
        } else {
          ResultTable r(2);
          std::vector<Pre>& ccol = r.MutableCol(ctx_col);
          ccol.resize(pairs.size());
          for (size_t k = 0; k < pairs.size(); ++k) {
            ccol[k] = outer_sorted[pairs.left_rows[k]];
          }
          r.MutableCol(1 - ctx_col) = std::move(pairs.right_nodes);
          edges_[e].result = std::move(r);
          if (options_.budget != nullptr) {
            options_.budget->Charge(edges_[e].ResultRows() * 2 * sizeof(Pre));
          }
        }
        RecordIntermediate(edges_[e].ResultRows());
        if (options_.cancel != nullptr) {
          ROX_RETURN_IF_ERROR(options_.cancel->Check());
        }
        return Status::Ok();
      }
      case EquiAlgo::kIndexNl:
        last_kernel_ = "index-nl";
        return finish(ShardedValueIndexJoinParts(
            Sharded(), ctx_doc, ctx_nodes, target_doc,
            corpus_.value_index(tx.doc),
            tx.type == VertexType::kAttribute ? ValueProbeSpec::Attr(tx.name)
                                              : ValueProbeSpec::Text(),
            &stats_.sharded, options_.cancel,
            options_.vectorized_kernels));
    }
    return Status::Internal("unhandled equi-join algorithm");
  }
  last_kernel_ = "index-nl";
  ValueProbeSpec spec = tx.type == VertexType::kAttribute
                            ? ValueProbeSpec::Attr(tx.name)
                            : ValueProbeSpec::Text();
  return finish(ShardedValueIndexJoinParts(Sharded(), ctx_doc, ctx_nodes,
                                           target_doc,
                                           corpus_.value_index(tx.doc), spec,
                                           &stats_.sharded, options_.cancel,
                                           options_.vectorized_kernels));
}

void RoxState::StoreLazyResult(EdgeId e, std::span<const Pre> ctx_base,
                               size_t ctx_col, ShardedJoinParts&& parts) {
  uint64_t total = parts.size();
  ResultView v(2, total);
  size_t tgt_col = 1 - ctx_col;
  if (parts.parts.size() == 1 && parts.offsets[0] == 0) {
    // Single lane: the pair arrays ARE the view — adopt, zero copies.
    JoinPairs& p = parts.parts[0];
    v.col(ctx_col) = {ctx_base.data(),
                      arena_.Adopt(std::move(p.left_rows)).data()};
    v.col(tgt_col) = {arena_.Adopt(std::move(p.right_nodes)).data(),
                      nullptr};
  } else {
    // Multi-lane fan-out: flatten once into arena columns, applying the
    // lane offsets on the fly (the "offset-adjusted view" merge; the
    // eager path instead merges into a JoinPairs and then row-copies).
    std::span<uint32_t> sel = arena_.Alloc(total);
    std::span<uint32_t> base = arena_.Alloc(total);
    uint64_t w = 0;
    for (size_t s = 0; s < parts.parts.size(); ++s) {
      const JoinPairs& p = parts.parts[s];
      uint32_t off = parts.offsets[s];
      for (size_t i = 0; i < p.left_rows.size(); ++i) {
        sel[w + i] = p.left_rows[i] + off;
      }
      if (!p.right_nodes.empty()) {
        std::memcpy(base.data() + w, p.right_nodes.data(),
                    p.right_nodes.size() * sizeof(Pre));
      }
      w += p.size();
    }
    v.col(ctx_col) = {ctx_base.data(), sel.data()};
    v.col(tgt_col) = {base.data(), nullptr};
  }
  edges_[e].view = std::move(v);
}

void RoxState::UpdateAfterExecution(EdgeId e) {
  const Edge& edge = graph_.edge(e);

  // Remember old cardinalities for the no-resample ablation.
  double old_cards[2] = {vertices_[edge.v1].card, vertices_[edge.v2].card};

  // Semi-join-reduce the endpoint tables to the surviving nodes and
  // refresh card/sample (Algorithm 1, lines 14-17). DistinctColumn
  // hashes either representation without a row gather.
  if (edges_[e].HasResult()) {
    VertexId vs[2] = {edge.v1, edge.v2};
    for (int side = 0; side < 2; ++side) {
      VertexState& v = vertices_[vs[side]];
      v.table = edges_[e].view.has_value()
                    ? edges_[e].view->DistinctColumn(side)
                    : edges_[e].result->DistinctColumn(side);
      v.card = static_cast<double>(v.table->size());
      std::vector<uint64_t> idx =
          rng_.SampleWithoutReplacement(v.table->size(), options_.tau);
      v.sample.clear();
      for (uint64_t i : idx) v.sample.push_back((*v.table)[i]);
    }
  }

  // Re-weigh un-executed edges incident to the executed edge's
  // endpoints (Algorithm 1, lines 18-19). Re-sampling — rather than
  // scaling by the hit ratio — is what detects correlations.
  obs::QueryTrace* qt = options_.query_trace;
  bool trace_full = qt != nullptr && qt->full_enabled();
  int side = 0;
  for (VertexId v : {edge.v1, edge.v2}) {
    for (EdgeId inc : graph_.IncidentEdges(v)) {
      if (edges_[inc].executed) continue;
      // A tripped query skips the re-weighing: stale weights are
      // harmless because the optimizer's next checkpoint unwinds.
      if (StopRequested(options_.cancel)) return;
      if (options_.resample_after_execute) {
        double old_w = edges_[inc].weight;
        edges_[inc].weight = EstimateCardinality(inc);
        if (trace_full) {
          // Re-sampling event, recorded as a child of the executed
          // edge's span (the execution caused the re-weigh).
          char buf[64];
          std::snprintf(buf, sizeof(buf), "w %.0f -> %.0f", old_w,
                        edges_[inc].weight);
          qt->Event("resample", graph_.EdgeLabel(inc) + ": " + buf);
          if (qt->open_edge() != nullptr) ++qt->open_edge()->resamples;
        }
      } else if (edges_[inc].weight >= 0 && old_cards[side] > 0 &&
                 vertices_[v].card >= 0) {
        edges_[inc].weight *= vertices_[v].card / old_cards[side];
      }
    }
    ++side;
  }

  if (options_.trace) {
    std::fprintf(
        stderr, "[rox] executed edge %u (%s): |R_e|=%llu |T(v1)|=%.0f "
        "|T(v2)|=%.0f\n",
        e, graph_.EdgeLabel(e).c_str(),
        static_cast<unsigned long long>(edges_[e].ResultRows()),
        vertices_[edge.v1].card, vertices_[edge.v2].card);
  }
}

// --- timed operator selection (§6 extension) -------------------------------------

VertexId RoxState::ChooseStepDirection(EdgeId e, VertexId def) {
  const Edge& edge = graph_.edge(e);
  VertexId other = edge.Other(def);
  // Comparing directions needs a materialized table and a sample on
  // both sides.
  if (!vertices_[def].table.has_value() ||
      !vertices_[other].table.has_value() ||
      vertices_[def].sample.empty() || vertices_[other].sample.empty()) {
    return def;
  }
  ScopedTimer timer(stats_.sampling_time);
  ++stats_.operator_selections;
  // Extrapolated full cost: per-sampled-row time x table size. Both
  // candidate operators are zero-investment w.r.t. the sampled side, so
  // the extrapolation is sound.
  auto cost_of = [&](VertexId from) {
    const VertexState& vs = vertices_[from];
    StopWatch w;
    SampleEdgeFrom(e, from, vs.sample, options_.tau);
    double per_row =
        static_cast<double>(w.ElapsedNanos()) / vs.sample.size();
    return per_row * static_cast<double>(vs.table->size());
  };
  double cost_def = cost_of(def);
  double cost_other = cost_of(other);
  if (cost_other < cost_def) {
    ++stats_.operator_overrides;
    return other;
  }
  return def;
}

RoxState::EquiAlgo RoxState::ChooseEquiAlgorithm(EdgeId e, VertexId ctx) {
  const Edge& edge = graph_.edge(e);
  VertexId tgt = edge.Other(ctx);
  const VertexState& cs = vertices_[ctx];
  const VertexState& ts = vertices_[tgt];
  if (cs.sample.empty() || ts.sample.empty() || !cs.table.has_value() ||
      !ts.table.has_value()) {
    return EquiAlgo::kHash;
  }
  ScopedTimer timer(stats_.sampling_time);
  ++stats_.operator_selections;
  const Document& cdoc = corpus_.doc(graph_.vertex(ctx).doc);
  const Document& tdoc = corpus_.doc(graph_.vertex(tgt).doc);
  double n_outer = static_cast<double>(cs.table->size());
  double n_inner = static_cast<double>(ts.table->size());

  // Index nested loop: per-probe time on the sampled outer x |outer|.
  double cost_nl;
  {
    const Vertex& tx = graph_.vertex(tgt);
    ValueProbeSpec spec = tx.type == VertexType::kAttribute
                              ? ValueProbeSpec::Attr(tx.name)
                              : ValueProbeSpec::Text();
    StopWatch w;
    ValueIndexJoinPairsInto(cdoc, cs.sample, tdoc,
                            corpus_.value_index(tx.doc), spec, options_.tau,
                            sample_scratch_, nullptr,
                            options_.vectorized_kernels);
    cost_nl = w.ElapsedNanos() / static_cast<double>(cs.sample.size()) *
              n_outer;
  }
  // Hash join: build on sampled inner + probe with sampled outer, both
  // extrapolated linearly.
  double cost_hash;
  {
    StopWatch w;
    HashValueJoinPairs(cdoc, cs.sample, tdoc, ts.sample, nullptr,
                       options_.vectorized_kernels);
    double per =
        w.ElapsedNanos() /
        static_cast<double>(cs.sample.size() + ts.sample.size());
    cost_hash = per * (n_outer + n_inner);
  }
  // Merge join: sort both sides then scan; n log n extrapolation.
  double cost_merge;
  {
    StopWatch w;
    auto so = SortByValueId(cdoc, cs.sample);
    auto si = SortByValueId(tdoc, ts.sample);
    MergeValueJoinPairs(cdoc, so, tdoc, si, nullptr,
                        options_.vectorized_kernels);
    double sample_n =
        static_cast<double>(cs.sample.size() + ts.sample.size());
    double per = w.ElapsedNanos() / (sample_n * std::log2(sample_n + 2));
    double full_n = n_outer + n_inner;
    cost_merge = per * full_n * std::log2(full_n + 2);
  }
  EquiAlgo best = EquiAlgo::kHash;
  double best_cost = cost_hash;
  if (cost_merge < best_cost) {
    best = EquiAlgo::kMerge;
    best_cost = cost_merge;
  }
  if (cost_nl < best_cost) {
    best = EquiAlgo::kIndexNl;
    best_cost = cost_nl;
  }
  if (best != EquiAlgo::kHash) ++stats_.operator_overrides;
  return best;
}

// --- final assembly -------------------------------------------------------------

Result<ResultTable> RoxState::AssembleFinal(std::vector<VertexId>* columns) {
  if (options_.lazy_materialization) {
    // Assemble as views, then gather every column once — the single
    // terminal materialization. With all vertices marked as output,
    // no column is elided, so the gathered table is byte-identical to
    // the eager assembly's.
    std::vector<VertexId> all(graph_.VertexCount());
    std::iota(all.begin(), all.end(), 0);
    ROX_ASSIGN_OR_RETURN(ResultView view, AssembleFinalView(columns, all));
    ScopedTimer timer(stats_.execution_time);
    ScopedTimer assembly_timer(stats_.assembly_time);
    return view.Gather(&stats_.gather);
  }
  ScopedTimer timer(stats_.execution_time);
  ScopedTimer assembly_timer(stats_.assembly_time);

  // Edges with materialized pair results, cheapest first.
  std::vector<EdgeId> order;
  for (EdgeId e = 0; e < graph_.EdgeCount(); ++e) {
    if (edges_[e].result.has_value()) order.push_back(e);
  }
  std::sort(order.begin(), order.end(), [&](EdgeId a, EdgeId b) {
    return edges_[a].result->NumRows() < edges_[b].result->NumRows();
  });

  struct Comp {
    std::vector<VertexId> members;
    ResultTable table;
    bool active = true;
  };
  std::vector<Comp> comps;
  // vertex -> (component, column) or (-1, 0).
  std::vector<std::pair<int, size_t>> where(graph_.VertexCount(), {-1, 0});

  // Deferred edges that closed cycles before both sides were assembled
  // never happen: an edge merges or filters immediately.
  for (EdgeId e : order) {
    if (options_.cancel != nullptr) {
      ROX_RETURN_IF_ERROR(options_.cancel->Check());
    }
    const Edge& edge = graph_.edge(e);
    const ResultTable& r = *edges_[e].result;
    auto [c1, col1] = where[edge.v1];
    auto [c2, col2] = where[edge.v2];

    // Pair lookup keyed by v1 node -> run of v2 nodes (CSR).
    auto build_runs = [&](size_t key_col) {
      const std::vector<Pre>& kcol = r.Col(key_col);
      return BuildValueRuns(kcol.size(),
                            [&](uint32_t i) { return kcol[i]; });
    };

    if (c1 < 0 && c2 < 0) {
      Comp c;
      c.members = {edge.v1, edge.v2};
      c.table = r;
      where[edge.v1] = {static_cast<int>(comps.size()), 0};
      where[edge.v2] = {static_cast<int>(comps.size()), 1};
      comps.push_back(std::move(c));
      continue;
    }

    if (c1 >= 0 && c2 >= 0 && c1 == c2) {
      // Cycle edge: keep rows whose (v1, v2) pair is in R_e.
      std::unordered_set<uint64_t> pairs;
      pairs.reserve(r.NumRows());
      for (uint64_t i = 0; i < r.NumRows(); ++i) {
        pairs.insert((static_cast<uint64_t>(r.Col(0)[i]) << 32) |
                     r.Col(1)[i]);
      }
      Comp& c = comps[c1];
      const std::vector<Pre>& a = c.table.Col(col1);
      const std::vector<Pre>& b = c.table.Col(col2);
      std::vector<uint32_t> keep;
      for (uint32_t i = 0; i < a.size(); ++i) {
        if (pairs.contains((static_cast<uint64_t>(a[i]) << 32) | b[i])) {
          keep.push_back(i);
        }
      }
      c.table = c.table.SelectRows(keep);
      RecordIntermediate(c.table.NumRows());
      continue;
    }

    // Anchor on the side already assembled (prefer v1's component).
    VertexId anchor = edge.v1, far = edge.v2;
    size_t anchor_key = 0, far_key = 1;
    if (c1 < 0) {
      anchor = edge.v2;
      far = edge.v1;
      anchor_key = 1;
      far_key = 0;
    }
    auto [ca, cola] = where[anchor];
    auto [runs, ids] = build_runs(anchor_key);
    Comp& a = comps[ca];
    JoinPairs jp;
    {
      const std::vector<Pre>& acol = a.table.Col(cola);
      const std::vector<Pre>& fcol = r.Col(far_key);
      for (uint32_t row = 0; row < acol.size(); ++row) {
        const auto* run = runs.Find(acol[row]);
        if (run == nullptr) continue;
        for (uint32_t j = 0; j < run->b; ++j) {
          jp.left_rows.push_back(row);
          jp.right_nodes.push_back(fcol[ids[run->a + j]]);
        }
      }
    }

    auto [cf, colf] = where[far];
    Comp merged;
    if (cf < 0) {
      merged.table = ExtendTableWithPairs(a.table, jp);
      merged.members = a.members;
      merged.members.push_back(far);
      a.active = false;
    } else {
      Comp& b = comps[cf];
      merged.table = JoinTablesWithPairs(a.table, jp, b.table, colf);
      merged.members = a.members;
      merged.members.insert(merged.members.end(), b.members.begin(),
                            b.members.end());
      a.active = false;
      b.active = false;
    }
    int id = static_cast<int>(comps.size());
    for (size_t c = 0; c < merged.members.size(); ++c) {
      where[merged.members[c]] = {id, c};
    }
    RecordIntermediate(merged.table.NumRows());
    comps.push_back(std::move(merged));
  }

  int active = -1;
  for (size_t i = 0; i < comps.size(); ++i) {
    if (!comps[i].active) continue;
    if (active >= 0) {
      return Status::FailedPrecondition(
          "assembly left multiple components (disconnected join graph)");
    }
    active = static_cast<int>(i);
  }
  if (active < 0) {
    return Status::FailedPrecondition("nothing to assemble");
  }
  if (columns != nullptr) *columns = comps[active].members;
  return std::move(comps[active].table);
}

Result<ResultView> RoxState::AssembleFinalView(
    std::vector<VertexId>* columns,
    std::span<const VertexId> output_vertices) {
  ROX_CHECK(options_.lazy_materialization);
  ScopedTimer timer(stats_.execution_time);
  ScopedTimer assembly_timer(stats_.assembly_time);

  // Edges with pair-result views, cheapest first (the same order the
  // eager assembly picks, so the emitted row expansions are identical).
  std::vector<EdgeId> order;
  for (EdgeId e = 0; e < graph_.EdgeCount(); ++e) {
    if (edges_[e].view.has_value()) order.push_back(e);
  }
  std::sort(order.begin(), order.end(), [&](EdgeId a, EdgeId b) {
    return edges_[a].view->NumRows() < edges_[b].view->NumRows();
  });

  // Column liveness: a vertex's column is read by every assembly step
  // of an incident edge and by the caller if it is an output vertex.
  // Past its last read, the column is dead — composition skips it and
  // it never costs another write. This is what makes late
  // materialization profitable on wide graphs: of Q1's ~15 columns
  // only the 3 for-variables survive to the plan tail.
  std::vector<size_t> last_read(graph_.VertexCount(), 0);
  for (size_t i = 0; i < order.size(); ++i) {
    const Edge& edge = graph_.edge(order[i]);
    last_read[edge.v1] = i;
    last_read[edge.v2] = i;
  }
  std::vector<bool> output(graph_.VertexCount(), false);
  for (VertexId v : output_vertices) output[v] = true;
  auto live_after = [&](VertexId v, size_t pos) {
    return output[v] || last_read[v] > pos;
  };
  auto live_flags = [&](const std::vector<VertexId>& members, size_t pos) {
    std::vector<bool> flags(members.size());
    for (size_t i = 0; i < members.size(); ++i) {
      flags[i] = live_after(members[i], pos);
    }
    return flags;
  };

  struct Comp {
    std::vector<VertexId> members;
    ResultView view;
    bool active = true;
  };
  std::vector<Comp> comps;
  // vertex -> (component, column) or (-1, 0).
  std::vector<std::pair<int, size_t>> where(graph_.VertexCount(), {-1, 0});

  for (size_t pos = 0; pos < order.size(); ++pos) {
    if (options_.cancel != nullptr) {
      ROX_RETURN_IF_ERROR(options_.cancel->Check());
    }
    EdgeId e = order[pos];
    const Edge& edge = graph_.edge(e);
    const ResultView& r = *edges_[e].view;
    auto [c1, col1] = where[edge.v1];
    auto [c2, col2] = where[edge.v2];

    // Pair lookup keyed by key-column node -> run of pair indexes (CSR;
    // same construction as the eager assembly).
    auto build_runs = [&](size_t key_col) {
      return BuildValueRuns(r.NumRows(),
                            [&](uint32_t i) { return r.At(key_col, i); });
    };

    if (c1 < 0 && c2 < 0) {
      Comp c;
      c.members = {edge.v1, edge.v2};
      c.view = r;
      if (!live_after(edge.v1, pos)) c.view.col(0).dead = true;
      if (!live_after(edge.v2, pos)) c.view.col(1).dead = true;
      where[edge.v1] = {static_cast<int>(comps.size()), 0};
      where[edge.v2] = {static_cast<int>(comps.size()), 1};
      comps.push_back(std::move(c));
      continue;
    }

    if (c1 >= 0 && c2 >= 0 && c1 == c2) {
      // Cycle edge: keep rows whose (v1, v2) pair is in R_e.
      std::unordered_set<uint64_t> pairs;
      pairs.reserve(r.NumRows());
      for (uint64_t i = 0; i < r.NumRows(); ++i) {
        pairs.insert((static_cast<uint64_t>(r.At(0, i)) << 32) | r.At(1, i));
      }
      Comp& c = comps[c1];
      std::vector<uint32_t> keep;
      for (uint32_t i = 0; i < c.view.NumRows(); ++i) {
        if (pairs.contains((static_cast<uint64_t>(c.view.At(col1, i)) << 32) |
                           c.view.At(col2, i))) {
          keep.push_back(i);
        }
      }
      std::vector<bool> live = live_flags(c.members, pos);
      c.view = SelectRowsView(c.view, keep, arena_, &live);
      RecordIntermediate(c.view.NumRows());
      continue;
    }

    // Anchor on the side already assembled (prefer v1's component).
    VertexId anchor = edge.v1, far = edge.v2;
    size_t anchor_key = 0, far_key = 1;
    if (c1 < 0) {
      anchor = edge.v2;
      far = edge.v1;
      anchor_key = 1;
      far_key = 0;
    }
    auto [ca, cola] = where[anchor];
    auto [runs, ids] = build_runs(anchor_key);
    Comp& a = comps[ca];
    JoinPairs jp;
    {
      uint64_t n_anchor = a.view.NumRows();
      jp.Reserve(n_anchor);
      for (uint32_t row = 0; row < n_anchor; ++row) {
        const auto* run = runs.Find(a.view.At(cola, row));
        if (run == nullptr) continue;
        for (uint32_t j = 0; j < run->b; ++j) {
          jp.left_rows.push_back(row);
          jp.right_nodes.push_back(r.At(far_key, ids[run->a + j]));
        }
      }
    }

    auto [cf, colf] = where[far];
    Comp merged;
    std::vector<bool> live_a = live_flags(a.members, pos);
    if (cf < 0) {
      std::span<const uint32_t> rows =
          arena_.Adopt(std::move(jp.left_rows));
      merged.view = ComposeRows(a.view, rows, arena_, &live_a);
      if (live_after(far, pos)) {
        merged.view.AddColumn(
            {arena_.Adopt(std::move(jp.right_nodes)).data(), nullptr});
      } else {
        merged.view.AddColumn({nullptr, nullptr, /*dead=*/true});
      }
      merged.members = a.members;
      merged.members.push_back(far);
      a.active = false;
    } else {
      Comp& b = comps[cf];
      std::vector<bool> live_b = live_flags(b.members, pos);
      merged.view = JoinViewsWithPairs(a.view, jp, b.view, colf, arena_,
                                       &live_a, &live_b);
      merged.members = a.members;
      merged.members.insert(merged.members.end(), b.members.begin(),
                            b.members.end());
      a.active = false;
      b.active = false;
    }
    int id = static_cast<int>(comps.size());
    for (size_t c = 0; c < merged.members.size(); ++c) {
      where[merged.members[c]] = {id, c};
    }
    RecordIntermediate(merged.view.NumRows());
    comps.push_back(std::move(merged));
  }

  int active = -1;
  for (size_t i = 0; i < comps.size(); ++i) {
    if (!comps[i].active) continue;
    if (active >= 0) {
      return Status::FailedPrecondition(
          "assembly left multiple components (disconnected join graph)");
    }
    active = static_cast<int>(i);
  }
  if (active < 0) {
    return Status::FailedPrecondition("nothing to assemble");
  }
  if (columns != nullptr) *columns = comps[active].members;
  stats_.arena_bytes = arena_.bytes_reserved();
  return std::move(comps[active].view);
}

bool RoxState::EquiJoinImplied(VertexId a, VertexId b) const {
  if (a == b) return true;
  std::vector<VertexId> stack = {a};
  std::vector<bool> seen(graph_.VertexCount(), false);
  seen[a] = true;
  while (!stack.empty()) {
    VertexId v = stack.back();
    stack.pop_back();
    for (EdgeId e : graph_.IncidentEdges(v)) {
      const Edge& ed = graph_.edge(e);
      if (!ed.IsEquiJoin() || !edges_[e].executed) continue;
      VertexId o = ed.Other(v);
      if (o == b) return true;
      if (!seen[o]) {
        seen[o] = true;
        stack.push_back(o);
      }
    }
  }
  return false;
}

void RoxState::RecordIntermediate(uint64_t rows) {
  stats_.cumulative_intermediate_rows += rows;
  stats_.peak_intermediate_rows =
      std::max(stats_.peak_intermediate_rows, rows);
}

// --- queries -------------------------------------------------------------------

int RoxState::RemainingEdges() const {
  int n = 0;
  for (const EdgeState& es : edges_) {
    if (!es.executed) ++n;
  }
  return n;
}

EdgeId RoxState::MinWeightEdge() const {
  EdgeId best = kInvalidEdgeId;
  double best_w = 0;
  for (EdgeId e = 0; e < edges_.size(); ++e) {
    if (edges_[e].executed || edges_[e].weight < 0) continue;
    if (best == kInvalidEdgeId || edges_[e].weight < best_w) {
      best = e;
      best_w = edges_[e].weight;
    }
  }
  return best;
}

std::vector<EdgeId> RoxState::UnexecutedEdges(VertexId v) const {
  std::vector<EdgeId> out;
  for (EdgeId e : graph_.IncidentEdges(v)) {
    if (!edges_[e].executed) out.push_back(e);
  }
  return out;
}

}  // namespace rox
