// Run-time execution state of the ROX optimizer: per-vertex materialized
// tables and samples, per-edge weights and materialized pair results.
//
// Notation mapping to the paper (§3):
//   T(v)    -> VertexState::table       (distinct nodes satisfying v)
//   S(v)    -> VertexState::sample
//   card(v) -> VertexState::card
//   w(e)    -> EdgeState::weight
//   exec(e, T(v1), T(v2)) -> RoxState::ExecuteEdge
//
// Execution model. Executing an edge materializes its *pair result*
// R_e ⊆ T(v1) × T(v2) — the paper's "partial result" — and then
// semi-join-reduces both vertex tables to the nodes that survived
// (Algorithm 1's UpdateTable, lines 14-17). Edge weights therefore
// estimate exactly |R_e|, and the cost of one execution is governed by
// the tables as they stand, never by previously joined combinations.
// After all edges are executed, AssembleFinal() joins the pair results
// into the fully joined relation of the Join Graph (the Yannakakis-
// style assembly a relational back-end performs for the plan tail);
// edges that close cycles act as filters during assembly.

#ifndef ROX_ROX_STATE_H_
#define ROX_ROX_STATE_H_

#include <optional>
#include <vector>

#include "common/rng.h"
#include "common/status.h"
#include "common/timer.h"
#include "exec/column_arena.h"
#include "exec/result_table.h"
#include "exec/result_view.h"
#include "exec/sharded_exec.h"
#include "exec/structural_join.h"
#include "graph/join_graph.h"
#include "index/corpus.h"
#include "index/sharded_corpus.h"
#include "obs/trace.h"
#include "rox/options.h"

namespace rox {

// Execution/overhead statistics of one ROX run.
struct RoxStats {
  TimeAccumulator sampling_time;   // chain sampling + weight estimation
  TimeAccumulator execution_time;  // edge executions + final assembly
  TimeAccumulator assembly_time;   // final assembly only (⊆ execution)

  uint64_t edges_executed = 0;
  uint64_t chain_sample_calls = 0;
  // Edges whose initial weight came from RoxOptions::warm_edge_weights
  // instead of Phase 1 sampling.
  uint64_t warm_started_weights = 0;
  // Timed operator selections performed (§6 extension) and how often
  // they overrode the default (smaller-input / hash-join) choice.
  uint64_t operator_selections = 0;
  uint64_t operator_overrides = 0;
  uint64_t chain_rounds = 0;
  uint64_t sampled_tuples = 0;  // tuples produced by sampled operators
  // Σ of intermediate result sizes: every |R_e| plus every intermediate
  // of the final assembly — the run's total intermediate volume (row
  // counts are representation-independent: lazy and eager runs report
  // identical values).
  uint64_t cumulative_intermediate_rows = 0;
  uint64_t peak_intermediate_rows = 0;
  // Late-materialization gather counters (zero on eager runs, which
  // copy at every step instead of gathering once).
  GatherStats gather;
  // Bytes held by the run's column arena (lazy runs only).
  uint64_t arena_bytes = 0;
  std::vector<EdgeId> execution_order;

  // Sharded execution counters (zero/empty when the run was unsharded).
  ShardFanoutStats sharded;
};

struct VertexState {
  // T(v): sorted duplicate-free nodes, once materialized.
  std::optional<std::vector<Pre>> table;
  // S(v): up to τ sampled nodes (document order).
  std::vector<Pre> sample;
  // card(v): estimated cardinality (<0: unknown).
  double card = -1.0;
};

struct EdgeState {
  double weight = -1.0;  // w(e); <0: unweighted
  bool executed = false;
  // R_e: two columns [v1 nodes, v2 nodes]; absent for edges whose
  // predicate was implied by transitivity and skipped. Eager runs
  // materialize `result`; lazy runs keep `view` (a selection vector
  // over arena-adopted base columns) instead.
  std::optional<ResultTable> result;
  std::optional<ResultView> view;

  bool HasResult() const { return result.has_value() || view.has_value(); }
  uint64_t ResultRows() const {
    if (result.has_value()) return result->NumRows();
    if (view.has_value()) return view->NumRows();
    return 0;
  }
};

// Output of a sampled (cut-off) edge execution.
struct EdgeSample {
  std::vector<Pre> out_nodes;  // matched nodes in the target vertex domain
  double est = 0.0;            // extrapolated full-result cardinality
};

class RoxState {
 public:
  // The snapshot is held (pinned) for the state's lifetime: an engine-
  // issued owning snapshot keeps its corpus epoch alive even if the
  // next epoch publishes mid-query (DESIGN.md §10). Unowned snapshots
  // (implicit from a stack-owned `const Corpus&`) rely on the caller.
  RoxState(CorpusSnapshot snapshot, const JoinGraph& graph,
           const RoxOptions& options);

  // --- phase 1 -------------------------------------------------------------

  // Initializes S(v)/card(v) for index-selectable vertices and w(e) for
  // edges with at least one sampled endpoint (Algorithm 1, lines 1-4).
  void InitializeSamplesAndWeights();

  // --- phase 2 primitives ---------------------------------------------------

  // Executes edge `e` fully: initializes T of index-selectable loose
  // endpoints, materializes the pair result R_e, semi-join-reduces both
  // vertex tables, refreshes samples/cards and re-samples incident
  // weights (Algorithm 1, lines 7-19).
  Status ExecuteEdge(EdgeId e);

  // Cut-off sampled execution of edge `e` taking `input` nodes on the
  // `from` side (zero-investment operators only). `limit` is the output
  // cut-off l.
  EdgeSample SampleEdgeFrom(EdgeId e, VertexId from,
                            std::span<const Pre> input, uint64_t limit);

  // Recomputes w(e) by sampling (the EstimateCard of §3). Returns the
  // new weight, or -1 if neither endpoint is sampled yet.
  double EstimateCardinality(EdgeId e);

  // Joins all materialized pair results into the fully joined relation;
  // `columns` receives the vertex of each output column. Requires all
  // edges executed and a connected graph. Under lazy materialization
  // this assembles views and gathers every column once at the end;
  // output is byte-identical to the eager assembly.
  Result<ResultTable> AssembleFinal(std::vector<VertexId>* columns);

  // Lazy-only: assembles the final relation as an un-gathered view over
  // state-owned storage (valid until the state dies). `output_vertices`
  // are the vertices whose columns the caller will read — all other
  // columns may come out dead (never materialized, must not be read).
  // `columns` always receives the full column -> vertex mapping.
  Result<ResultView> AssembleFinalView(
      std::vector<VertexId>* columns,
      std::span<const VertexId> output_vertices);

  // --- accessors -------------------------------------------------------------

  const JoinGraph& graph() const { return graph_; }
  const Corpus& corpus() const { return corpus_; }
  const CorpusSnapshot& snapshot() const { return snapshot_; }
  const RoxOptions& options() const { return options_; }
  Rng& rng() { return rng_; }

  const VertexState& vstate(VertexId v) const { return vertices_[v]; }
  const EdgeState& estate(EdgeId e) const { return edges_[e]; }
  bool Executed(EdgeId e) const { return edges_[e].executed; }

  // Number of un-executed edges.
  int RemainingEdges() const;

  // The un-executed edge with the smallest weight; kInvalidEdgeId if no
  // edge has a weight yet.
  EdgeId MinWeightEdge() const;

  // Un-executed edges incident to `v`.
  std::vector<EdgeId> UnexecutedEdges(VertexId v) const;

  // Materializes T(v) from an index lookup if needed (only valid for
  // index-selectable vertices).
  Status EnsureTable(VertexId v);

  // The current sample S(v).
  std::span<const Pre> Sample(VertexId v) const { return vertices_[v].sample; }

  RoxStats& stats() { return stats_; }
  const RoxStats& stats() const { return stats_; }

  // The query's flight recorder, or null when tracing is off.
  obs::QueryTrace* query_trace() const { return options_.query_trace; }

  // The per-query column arena backing lazy views (see result_view.h).
  ColumnArena& arena() { return arena_; }

 private:
  // EstimateCardinality without the sampling-time accounting (used when
  // the caller already holds the timer).
  double EstimateCardinalityLocked(EdgeId e);

  // Updates the cumulative/peak intermediate-size counters.
  void RecordIntermediate(uint64_t rows);

  // True if equality of a and b is already implied by executed
  // equi-join edges (transitivity over the equivalence class).
  bool EquiJoinImplied(VertexId a, VertexId b) const;

  // Builds T(v) for an index-selectable vertex from the indexes. When
  // sharding is enabled the per-shard lookups run in parallel and
  // concatenate (shard ranges are contiguous, so the result is still
  // in document order).
  Result<std::vector<Pre>> IndexLookup(VertexId v) const;

  // The sharded-execution bundle, or null when disabled.
  const ShardedExec* Sharded() const {
    return (options_.sharded != nullptr && options_.sharded->Enabled())
               ? options_.sharded
               : nullptr;
  }

  // The element/value indexes Phase-1 sample draws come from: the
  // designated sample shard's when one is configured, the full
  // per-document indexes otherwise (ShardedExec::kSampleUnion).
  const ElementIndex& SamplingElementIndex(DocId doc) const;
  const ValueIndex& SamplingValueIndex(DocId doc) const;

  // Estimated (or exact) cardinality of the index lookup for v.
  double IndexCount(VertexId v) const;

  // Applies the vertex's value predicate and (if materialized) the
  // T(v)-membership restriction to pair results, keeping arrays synced.
  void FilterPairsForVertex(VertexId v, JoinPairs& pairs) const;

  bool NodeSatisfiesVertex(VertexId v, Pre node) const;

  // Executes `e` between materialized sides, producing R_e.
  Status ExecuteEdgeInternal(EdgeId e);

  // Lazy R_e construction: adopts the context table into the arena as
  // the base of a selection-vector column and flattens the (possibly
  // multi-lane) filtered pair parts into arena columns, offset-adjusted
  // — no merged JoinPairs, no row-copying of the context column.
  void StoreLazyResult(EdgeId e, std::span<const Pre> ctx_base,
                       size_t ctx_col, ShardedJoinParts&& parts);

  // Post-execution bookkeeping: refresh T/S/card of the edge endpoints
  // and re-sample weights of their incident edges (lines 14-19).
  void UpdateAfterExecution(EdgeId e);

  // Chooses step spec for traversing edge `e` from side `from`.
  StepSpec StepSpecFrom(EdgeId e, VertexId from) const;

  // The physical equi-join algorithms selectable for materialized ends.
  enum class EquiAlgo : uint8_t { kHash, kMerge, kIndexNl };

  // §6 extension: times candidate context sides (for steps) on τ-sized
  // samples and returns the faster side; `def` is the size-heuristic
  // default.
  VertexId ChooseStepDirection(EdgeId e, VertexId def);
  // Ditto for equi-join algorithms when both ends are materialized.
  EquiAlgo ChooseEquiAlgorithm(EdgeId e, VertexId ctx);

  // Declared before corpus_: the reference below points into the
  // snapshot, which must be initialized (and destroyed) around it.
  CorpusSnapshot snapshot_;
  const Corpus& corpus_;
  const JoinGraph& graph_;
  RoxOptions options_;
  Rng rng_;

  std::vector<VertexState> vertices_;
  std::vector<EdgeState> edges_;
  RoxStats stats_;

  // The physical kernel the most recent ExecuteEdgeInternal ran, for
  // the trace's per-edge payload (static strings only).
  const char* last_kernel_ = "";

  // Arena backing lazy views (edge results, assembly intermediates).
  ColumnArena arena_;
  // Reused buffer of the sampled-execution loops (a RoxState runs one
  // query on one thread; sampled operators are never fanned out).
  JoinPairs sample_scratch_;
};

}  // namespace rox

#endif  // ROX_ROX_STATE_H_
