#include "rox/optimizer.h"

#include <algorithm>
#include <cstdio>

#include "common/check.h"
#include "common/str_util.h"
#include "engine/governor.h"
#include "obs/trace.h"

namespace rox {

RoxOptimizer::RoxOptimizer(CorpusSnapshot snapshot, const JoinGraph& graph,
                           RoxOptions options)
    : snapshot_(std::move(snapshot)),
      corpus_(*snapshot_),
      graph_(graph),
      options_(options) {}

Status RoxOptimizer::ExecutePath(const std::vector<EdgeId>& path) {
  // §3.1: the winning path segment "is treated as a separate Join
  // Graph" and executed in its best order. We realize that by
  // re-estimating the pending segment edges before every pick — the
  // weights computed during chain sampling go stale as executions
  // shrink the vertex tables.
  std::vector<EdgeId> pending = path;
  while (!pending.empty()) {
    auto has_materialized_end = [&](EdgeId e) {
      const Edge& edge = graph_.edge(e);
      for (VertexId v : {edge.v1, edge.v2}) {
        if (state_->vstate(v).table.has_value() ||
            graph_.vertex(v).IndexSelectable()) {
          return true;
        }
      }
      return false;
    };
    size_t best = pending.size();
    double best_w = -1;
    for (size_t i = 0; i < pending.size(); ++i) {
      if (state_->Executed(pending[i])) continue;
      if (!has_materialized_end(pending[i])) continue;
      double w = state_->EstimateCardinality(pending[i]);
      if (options_.trace) {
        std::fprintf(stderr, "[rox]   path candidate %s w=%.0f\n",
                     graph_.EdgeLabel(pending[i]).c_str(), w);
      }
      if (best == pending.size() || (w >= 0 && (best_w < 0 || w < best_w))) {
        best = i;
        best_w = w;
      }
    }
    if (best == pending.size()) {
      // Only already-executed (shared-prefix) edges remain.
      bool all_done = true;
      for (EdgeId e : pending) all_done &= state_->Executed(e);
      if (all_done) return Status::Ok();
      best = 0;
    }
    EdgeId e = pending[best];
    pending.erase(pending.begin() + best);
    if (state_->Executed(e)) continue;
    if (options_.cancel != nullptr) {
      ROX_RETURN_IF_ERROR(options_.cancel->Check());
    }
    ROX_RETURN_IF_ERROR(state_->ExecuteEdge(e));
  }
  return Status::Ok();
}

Status RoxOptimizer::Prepare() {
  ROX_RETURN_IF_ERROR(graph_.Validate());
  if (!graph_.IsConnected()) {
    return Status::InvalidArgument(
        "join graph must be connected (split disconnected graphs into "
        "separate ROX runs, as the paper's plans do)");
  }
  state_ = std::make_unique<RoxState>(snapshot_, graph_, options_);
  // Phase 1 (lines 1-4). A governance trip makes the sampling loops
  // stop early; the token check below reports it.
  state_->InitializeSamplesAndWeights();
  if (options_.cancel != nullptr) {
    ROX_RETURN_IF_ERROR(options_.cancel->Check());
  }
  return Status::Ok();
}

Status RoxOptimizer::RunLoop() {
  // An EXPLAIN-style caller may have Prepare()d already; reuse its
  // Phase 1 state instead of re-sampling.
  if (state_ == nullptr) ROX_RETURN_IF_ERROR(Prepare());
  obs::QueryTrace* qt = options_.query_trace;

  // Phase 2 (lines 5-19).
  ChainSampler sampler(*state_);
  while (state_->RemainingEdges() > 0) {
    // Governance checkpoint: one deadline/budget/cancel poll per chain
    // round bounds the undetected work between rounds to one path
    // segment (the kernels poll inside edge executions too).
    if (options_.cancel != nullptr) {
      ROX_RETURN_IF_ERROR(options_.cancel->Check());
    }
    if (options_.trace) {
      std::fprintf(stderr, "[rox] weights:");
      for (EdgeId e = 0; e < graph_.EdgeCount(); ++e) {
        if (state_->Executed(e)) continue;
        std::fprintf(stderr, "  %s=%.0f", graph_.EdgeLabel(e).c_str(),
                     state_->estate(e).weight);
      }
      std::fprintf(stderr, "\n");
    }
    std::vector<EdgeId> path;
    if (options_.enable_chain_sampling) {
      if (trace_log_ != nullptr) {
        trace_log_->emplace_back();
        path = sampler.Run(&trace_log_->back());
      } else {
        path = sampler.Run();
      }
    } else {
      EdgeId e = state_->MinWeightEdge();
      if (e != kInvalidEdgeId) path = {e};
    }
    if (path.empty()) {
      // No weighted edge: pick any un-executed edge with a
      // materializable endpoint (degenerate graphs).
      for (EdgeId e = 0; e < graph_.EdgeCount(); ++e) {
        if (!state_->Executed(e)) {
          path = {e};
          break;
        }
      }
      if (path.empty()) break;
    }
    if (qt != nullptr && qt->full_enabled()) {
      std::string detail;
      for (EdgeId e : path) {
        if (!detail.empty()) detail += " -> ";
        detail += graph_.EdgeLabel(e);
      }
      qt->Event("chain_round", std::move(detail));
    }
    ROX_RETURN_IF_ERROR(ExecutePath(path));
  }
  return Status::Ok();
}

std::vector<double> RoxOptimizer::FinalEdgeWeights() const {
  std::vector<double> out;
  out.reserve(graph_.EdgeCount());
  for (EdgeId e = 0; e < graph_.EdgeCount(); ++e) {
    out.push_back(state_->estate(e).weight);
  }
  return out;
}

Result<RoxResult> RoxOptimizer::Run() {
  ROX_RETURN_IF_ERROR(RunLoop());
  RoxResult out;
  {
    obs::ScopedSpan span(options_.query_trace, "assembly");
    ROX_ASSIGN_OR_RETURN(out.table, state_->AssembleFinal(&out.columns));
  }
  out.IndexColumns();
  out.stats = state_->stats();
  out.final_edge_weights = FinalEdgeWeights();
  return out;
}

Result<RoxViewResult> RoxOptimizer::RunView(
    std::span<const VertexId> output_vertices) {
  ROX_CHECK(options_.lazy_materialization);
  ROX_RETURN_IF_ERROR(RunLoop());
  RoxViewResult out;
  {
    obs::ScopedSpan span(options_.query_trace, "assembly");
    ROX_ASSIGN_OR_RETURN(out.view,
                         state_->AssembleFinalView(&out.columns,
                                                   output_vertices));
  }
  out.stats = state_->stats();
  out.final_edge_weights = FinalEdgeWeights();
  return out;
}

}  // namespace rox
