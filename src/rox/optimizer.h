// The ROX run-time optimizer — Algorithm 1 of the paper.
//
// Phase 1 draws index samples for every index-selectable vertex and
// weighs every edge by cut-off sampled execution. Phase 2 alternates
// chain sampling (search-space exploration) with the full, materialized
// execution of the winning path segment, re-sampling the affected edge
// weights after every execution, until all edges are executed.

#ifndef ROX_ROX_OPTIMIZER_H_
#define ROX_ROX_OPTIMIZER_H_

#include <memory>
#include <vector>

#include "common/status.h"
#include "exec/result_table.h"
#include "graph/join_graph.h"
#include "index/corpus.h"
#include "rox/chain_sampler.h"
#include "rox/options.h"
#include "rox/state.h"

namespace rox {

// Outcome of a ROX run.
struct RoxResult {
  // The fully joined relation; columns_[] maps column index -> vertex.
  ResultTable table;
  std::vector<VertexId> columns;
  RoxStats stats;

  // Convenience: index of vertex `v`'s column, or npos.
  static constexpr size_t npos = static_cast<size_t>(-1);
  size_t ColumnOf(VertexId v) const {
    for (size_t i = 0; i < columns.size(); ++i) {
      if (columns[i] == v) return i;
    }
    return npos;
  }
};

class RoxOptimizer {
 public:
  RoxOptimizer(const Corpus& corpus, const JoinGraph& graph,
               RoxOptions options = {});

  // Runs the full optimize-and-execute loop.
  Result<RoxResult> Run();

  // Access to the live state (after Run) for diagnostics.
  const RoxState& state() const { return *state_; }

  // When set before Run(), every ChainSample invocation appends its
  // diagnostic trace here (used by the Table 2 bench to print the
  // per-round (cost, sf) table).
  void set_trace_log(std::vector<ChainSampleTrace>* log) { trace_log_ = log; }

 private:
  // Executes the edges of a winning path segment. Within the segment,
  // edges are executed cheapest-first among those already connected to
  // materialized data (§3.1: the segment "is treated as a separate Join
  // Graph" and executed in its best order).
  Status ExecutePath(const std::vector<EdgeId>& path);

  const Corpus& corpus_;
  const JoinGraph& graph_;
  RoxOptions options_;
  std::unique_ptr<RoxState> state_;
  std::vector<ChainSampleTrace>* trace_log_ = nullptr;
};

}  // namespace rox

#endif  // ROX_ROX_OPTIMIZER_H_
