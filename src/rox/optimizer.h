// The ROX run-time optimizer — Algorithm 1 of the paper.
//
// Phase 1 draws index samples for every index-selectable vertex and
// weighs every edge by cut-off sampled execution. Phase 2 alternates
// chain sampling (search-space exploration) with the full, materialized
// execution of the winning path segment, re-sampling the affected edge
// weights after every execution, until all edges are executed.

#ifndef ROX_ROX_OPTIMIZER_H_
#define ROX_ROX_OPTIMIZER_H_

#include <algorithm>
#include <memory>
#include <span>
#include <utility>
#include <vector>

#include "common/status.h"
#include "exec/result_table.h"
#include "graph/join_graph.h"
#include "index/corpus.h"
#include "rox/chain_sampler.h"
#include "rox/options.h"
#include "rox/state.h"

namespace rox {

// Outcome of a ROX run.
struct RoxResult {
  // The fully joined relation; columns_[] maps column index -> vertex.
  ResultTable table;
  std::vector<VertexId> columns;
  RoxStats stats;
  // w(e) as each edge last estimated it before execution — the learned
  // weights. An engine cache can feed them back into a later run of the
  // same graph via RoxOptions::warm_edge_weights (<0: never weighted).
  std::vector<double> final_edge_weights;

  // Convenience: index of vertex `v`'s column, or npos.
  static constexpr size_t npos = static_cast<size_t>(-1);
  size_t ColumnOf(VertexId v) const {
    if (column_index_.size() == columns.size()) {
      auto it = std::lower_bound(
          column_index_.begin(), column_index_.end(),
          std::make_pair(v, static_cast<size_t>(0)),
          [](const auto& a, const auto& b) { return a.first < b.first; });
      // The mapped-back check keeps lookups correct even if `columns`
      // was mutated in place without IndexColumns() (the index is then
      // stale but same-sized); such lookups fall through to the scan.
      if (it != column_index_.end() && it->first == v &&
          it->second < columns.size() && columns[it->second] == v) {
        return it->second;
      }
    }
    // Hand-built or stale-indexed results: linear scan.
    for (size_t i = 0; i < columns.size(); ++i) {
      if (columns[i] == v) return i;
    }
    return npos;
  }

  // (Re)builds the sorted vertex -> column index behind ColumnOf.
  // RoxOptimizer::Run calls this; call it again after mutating
  // `columns` by hand.
  void IndexColumns() {
    column_index_.clear();
    column_index_.reserve(columns.size());
    for (size_t i = 0; i < columns.size(); ++i) {
      column_index_.emplace_back(columns[i], i);
    }
    std::sort(column_index_.begin(), column_index_.end());
  }

 private:
  // Sorted by vertex id; kept in sync with `columns` by IndexColumns().
  std::vector<std::pair<VertexId, size_t>> column_index_;
};

// Outcome of a lazy ROX run: the fully joined relation as an
// un-gathered view over optimizer-owned storage (DESIGN.md §8). The
// view stays valid until the optimizer is destroyed or Run/RunView is
// called again; columns of vertices outside the requested output set
// may be dead (never materialized) and must not be read.
struct RoxViewResult {
  ResultView view;
  std::vector<VertexId> columns;
  RoxStats stats;
  std::vector<double> final_edge_weights;
};

class RoxOptimizer {
 public:
  // The snapshot is pinned for the optimizer's lifetime (threaded into
  // the RoxState); an implicit unowned snapshot from `const Corpus&`
  // keeps single-epoch callers unchanged.
  RoxOptimizer(CorpusSnapshot snapshot, const JoinGraph& graph,
               RoxOptions options = {});

  // Runs the full optimize-and-execute loop. Under lazy materialization
  // (the default) the final relation is assembled as views and gathered
  // once here; results are byte-identical to the eager path.
  Result<RoxResult> Run();

  // Lazy-only: like Run() but stops before the terminal gather —
  // `output_vertices` are the vertices whose columns the caller will
  // read. The caller gathers exactly what it needs (e.g. the plan
  // tail's for-variable columns) and nothing else ever materializes.
  Result<RoxViewResult> RunView(std::span<const VertexId> output_vertices);

  // Phase 1 only: validates the graph, draws the index samples and
  // estimates every edge weight, executing nothing. state() then
  // exposes the sampled cardinalities and weights — the EXPLAIN
  // surface's estimates. A Prepare()d optimizer can still Run(): the
  // loop reuses the prepared state instead of re-sampling.
  Status Prepare();

  // Access to the live state (after Run) for diagnostics.
  const RoxState& state() const { return *state_; }

  // When set before Run(), every ChainSample invocation appends its
  // diagnostic trace here (used by the Table 2 bench to print the
  // per-round (cost, sf) table).
  void set_trace_log(std::vector<ChainSampleTrace>* log) { trace_log_ = log; }

 private:
  // Executes the edges of a winning path segment. Within the segment,
  // edges are executed cheapest-first among those already connected to
  // materialized data (§3.1: the segment "is treated as a separate Join
  // Graph" and executed in its best order).
  Status ExecutePath(const std::vector<EdgeId>& path);

  // The optimize-and-execute loop shared by Run and RunView: validates
  // the graph, runs Phase 1 and executes all edges (Phase 2), leaving
  // the pair results in state_ ready for final assembly.
  Status RunLoop();

  // Copies the learned edge weights out of state_.
  std::vector<double> FinalEdgeWeights() const;

  CorpusSnapshot snapshot_;  // declared before corpus_ (it points in)
  const Corpus& corpus_;
  const JoinGraph& graph_;
  RoxOptions options_;
  std::unique_ptr<RoxState> state_;
  std::vector<ChainSampleTrace>* trace_log_ = nullptr;
};

}  // namespace rox

#endif  // ROX_ROX_OPTIMIZER_H_
