#include "rox/chain_sampler.h"

#include <algorithm>

#include "common/check.h"

namespace rox {

std::vector<EdgeId> ChainSampler::ExpandableEdges(const PathSegment& p) const {
  std::vector<EdgeId> out;
  for (EdgeId e : state_.UnexecutedEdges(p.stop_vertex)) {
    if (std::find(p.edges.begin(), p.edges.end(), e) == p.edges.end()) {
      out.push_back(e);
    }
  }
  return out;
}

bool ChainSampler::Expandable(const PathSegment& p) const {
  return !ExpandableEdges(p).empty();
}

int ChainSampler::FindStrictWinner(const std::vector<PathSegment>& paths) {
  for (size_t i = 0; i < paths.size(); ++i) {
    if (paths[i].edges.empty()) continue;
    bool wins = true;
    for (size_t j = 0; j < paths.size(); ++j) {
      if (i == j || paths[j].edges.empty()) continue;
      if (paths[i].cost + paths[i].sf * paths[j].cost > paths[j].cost) {
        wins = false;
        break;
      }
    }
    if (wins) return static_cast<int>(i);
  }
  return -1;
}

int ChainSampler::FindRelaxedWinner(const std::vector<PathSegment>& paths) {
  for (size_t i = 0; i < paths.size(); ++i) {
    if (paths[i].edges.empty()) continue;
    bool wins = true;
    for (size_t j = 0; j < paths.size(); ++j) {
      if (i == j || paths[j].edges.empty()) continue;
      double lhs = paths[i].cost + paths[i].sf * paths[j].cost;
      double rhs = paths[j].cost + paths[j].sf * paths[i].cost;
      if (lhs > rhs) {
        wins = false;
        break;
      }
    }
    if (wins) return static_cast<int>(i);
  }
  // No pairwise winner (possible with cyclic preferences): minimum cost.
  int best = -1;
  for (size_t i = 0; i < paths.size(); ++i) {
    if (paths[i].edges.empty()) continue;
    if (best < 0 || paths[i].cost < paths[best].cost) {
      best = static_cast<int>(i);
    }
  }
  return best;
}

std::vector<EdgeId> ChainSampler::Run(ChainSampleTrace* trace) {
  ScopedTimer timer(state_.stats().sampling_time);
  ++state_.stats().chain_sample_calls;
  const JoinGraph& graph = state_.graph();
  const RoxOptions& options = state_.options();

  // Line 1: the un-executed edge with the smallest weight.
  EdgeId seed = state_.MinWeightEdge();
  if (seed == kInvalidEdgeId) return {};
  const Edge& seed_edge = graph.edge(seed);
  if (trace != nullptr) trace->seed_edge = seed;

  // Lines 2-5: without a branching endpoint there is nothing to explore.
  std::vector<bool> executed(graph.EdgeCount());
  for (EdgeId e = 0; e < graph.EdgeCount(); ++e) executed[e] = state_.Executed(e);
  int deg1 = graph.UnexecutedDegree(seed_edge.v1, executed);
  int deg2 = graph.UnexecutedDegree(seed_edge.v2, executed);
  if (deg1 <= 1 && deg2 <= 1) return {seed};

  // Line 3: source = the endpoint with the smaller cardinality (among
  // endpoints that actually have a sample to chain from).
  VertexId source = kInvalidVertexId;
  {
    double best = -1.0;
    for (VertexId v : {seed_edge.v1, seed_edge.v2}) {
      const VertexState& vs = state_.vstate(v);
      if (vs.card < 0 || vs.sample.empty()) continue;
      if (source == kInvalidVertexId || vs.card < best) {
        source = v;
        best = vs.card;
      }
    }
  }
  if (source == kInvalidVertexId) return {seed};
  double source_card = state_.vstate(source).card;
  if (trace != nullptr) trace->source = source;

  // Lines 6-10: the root segment.
  std::vector<PathSegment> paths;
  {
    PathSegment p0;
    p0.stop_vertex = source;
    std::span<const Pre> s = state_.Sample(source);
    p0.input.assign(s.begin(), s.end());
    paths.push_back(std::move(p0));
  }

  const double tau = static_cast<double>(options.tau);
  uint64_t cutoff = options.tau;

  // Lines 11-31: breadth-first rounds.
  for (uint64_t round = 0; round < options.max_chain_rounds; ++round) {
    bool any_expandable = false;
    for (const PathSegment& p : paths) {
      if (Expandable(p)) {
        any_expandable = true;
        break;
      }
    }
    if (!any_expandable) break;
    ++state_.stats().chain_rounds;

    // Line 12: grow the cut-off to dilute the front bias.
    if (options.grow_cutoff) cutoff += options.tau;

    std::vector<PathSegment> next;
    for (PathSegment& p : paths) {
      std::vector<EdgeId> exts = ExpandableEdges(p);
      if (exts.empty()) {
        next.push_back(std::move(p));  // keep, cannot be extended
        continue;
      }
      for (EdgeId e : exts) {
        const Edge& edge = graph.edge(e);
        VertexId v = p.stop_vertex;
        VertexId v_next = edge.Other(v);
        EdgeSample s = state_.SampleEdgeFrom(e, v, p.input, cutoff);
        PathSegment p2;
        p2.edges = p.edges;
        p2.edges.push_back(e);
        p2.stop_vertex = v_next;
        p2.input = std::move(s.out_nodes);
        // Lines 21-22.
        p2.cost = p.cost + s.est * source_card / tau;
        p2.sf = s.est / tau;
        next.push_back(std::move(p2));
      }
    }
    paths = std::move(next);

    if (trace != nullptr) {
      ChainSampleTrace::RoundSnapshot snap;
      for (const PathSegment& p : paths) {
        PathSegment copy;
        copy.edges = p.edges;
        copy.stop_vertex = p.stop_vertex;
        copy.cost = p.cost;
        copy.sf = p.sf;
        snap.paths.push_back(std::move(copy));
      }
      trace->round_snapshots.push_back(std::move(snap));
      trace->rounds = static_cast<int>(trace->round_snapshots.size());
    }

    // Lines 24-31: strict stopping condition.
    int winner = FindStrictWinner(paths);
    if (winner >= 0) {
      if (trace != nullptr) trace->stopped_early = true;
      return paths[winner].edges;
    }
  }

  // Lines 32-39: all branches explored (or round cap hit).
  int winner = FindRelaxedWinner(paths);
  if (winner >= 0 && !paths[winner].edges.empty()) {
    return paths[winner].edges;
  }
  return {seed};
}

}  // namespace rox
