// Tunables of the ROX run-time optimizer. Defaults follow the paper;
// the flags marked "ablation" switch off individual design decisions so
// their contribution can be benchmarked (see DESIGN.md §5).

#ifndef ROX_ROX_OPTIONS_H_
#define ROX_ROX_OPTIONS_H_

#include <cstdint>
#include <vector>

namespace rox {

namespace obs {
class QueryTrace;
}

class CancellationToken;
class MemoryBudget;
struct ShardedExec;

struct RoxOptions {
  // Sample size τ. The paper's default (§3, Phase 1) is 100; Figure 8
  // sweeps {25, 100, 400}.
  uint64_t tau = 100;

  // Ablation: when false, ChainSample degenerates to "execute the
  // edge with the smallest weight" (a purely greedy optimizer).
  bool enable_chain_sampling = true;

  // Ablation: when false, weights of edges incident to executed
  // vertices are scaled by the observed cardinality ratio instead of
  // being re-sampled — i.e. the independence assumption the paper warns
  // against (§3: "simply adjusting the already computed weights ...
  // implies an independence assumption").
  bool resample_after_execute = true;

  // Ablation: when false, the chain-sampling cut-off stays at τ instead
  // of growing by τ each round (§3.1's front-bias mitigation).
  bool grow_cutoff = true;

  // Use element-index range lookups to accelerate descendant steps.
  bool use_index_acceleration = true;

  // §6 extension (present in the paper's prototype): after deciding to
  // execute an edge, try the applicable physical operators on a τ-sample
  // and run the full edge with the fastest one — step edges choose their
  // direction (e.g. child vs parent staircase join), materialized
  // equi-joins choose between hash, merge and index nested-loop.
  bool timed_operator_selection = true;

  // Safety bound on breadth-first chain-sampling rounds.
  uint64_t max_chain_rounds = 64;

  // §6 extension ("run ROX with samples instead of the complete data"):
  // when in (0, 1), vertex tables are materialized as uniform samples
  // of this fraction of the full index lookup (never below τ nodes).
  // The run then produces an *approximate* subset of the result with
  // much smaller intermediates — useful for cheap result-size
  // estimation; 0 disables (exact execution).
  double approximate_fraction = 0.0;

  // Warm start (the engine's plan/weight cache). When `warm_edge_weights`
  // is non-null, `use_warm_start` is true, and the vector is sized to the
  // graph's edge count, Phase 1 adopts each cached entry >= 0 as the
  // edge's initial weight instead of estimating it by sampled execution —
  // reusing the weights a previous run of the same query learned.
  // Ablation: set `use_warm_start` to false to always pay the full
  // Phase 1 sampling cost even when cached weights are available.
  // Warm starting never changes the query result, only which join order
  // is explored first (see DESIGN.md §5/§6).
  bool use_warm_start = true;
  const std::vector<double>* warm_edge_weights = nullptr;

  // Sharded intra-query execution (see index/sharded_corpus.h). When
  // non-null and covering >1 shard, every full materialization step
  // fans out per shard on the bundle's pool and Phase-1 sample draws
  // go to the bundle's designated sample shard. Null (the default)
  // executes exactly as the unsharded paper prototype. Results are
  // identical either way; only wall-clock time changes.
  const ShardedExec* sharded = nullptr;

  // Late materialization (DESIGN.md §8): edge executions and the final
  // assembly keep intermediates as selection-vector views over arena-
  // backed base columns, and full row gather happens once, at the plan
  // tail. Results are byte-identical to the eager path; only wall-clock
  // time and allocation volume change. The eager path is retained for
  // differential testing and as the perf baseline of
  // bench_materialization.
  bool lazy_materialization = true;

  // Vectorized batch kernels (DESIGN.md §14): join kernels process the
  // outer input in fixed-size batches with a value pre-pass and bulk
  // span emission instead of row-at-a-time probing. Results are
  // byte-identical either way — the flag exists as the differential-
  // testing fallback and the perf-ablation baseline, like
  // lazy_materialization above.
  bool vectorized_kernels = true;

  // Seed for all sampling randomness; a fixed seed makes runs exactly
  // reproducible.
  uint64_t seed = 0x9e3779b9;

  // Print per-decision traces to stderr.
  bool trace = false;

  // Per-query flight recorder (obs/trace.h). When non-null, the
  // optimizer and state record spans and per-edge payloads into it —
  // from the query's thread only, so one trace serves one query. Null
  // (the default) records nothing; every instrumentation site is a
  // single null check.
  obs::QueryTrace* query_trace = nullptr;

  // Query-lifecycle governance (DESIGN.md §13). When non-null, the
  // optimizer polls the token at round/edge boundaries and hands it to
  // every kernel for amortized in-loop checks; a trip unwinds the run
  // with the token's Status (kCancelled / kDeadlineExceeded /
  // kResourceExhausted). Null (the default) runs unbounded, exactly as
  // before. The token is read-only here; the engine owns arming.
  const CancellationToken* cancel = nullptr;

  // When non-null, every byte the run's column arena reserves and every
  // eager pair-result materialization is charged here. The budget
  // latches instead of failing allocations; the token above (which
  // should observe the same budget) converts the latch into
  // kResourceExhausted at the next checkpoint.
  MemoryBudget* budget = nullptr;
};

}  // namespace rox

#endif  // ROX_ROX_OPTIONS_H_
