#include "index/corpus.h"

#include "common/failpoint.h"
#include "common/str_util.h"
#include "xml/parser.h"

namespace rox {

Result<DocId> Corpus::Add(std::unique_ptr<Document> doc) {
  if (doc->mutable_pool() != pool_.get()) {
    return Status::InvalidArgument(
        "document must share the corpus string pool");
  }
  if (by_name_.contains(doc->name())) {
    return Status::InvalidArgument(
        StrCat("duplicate document name: ", doc->name()));
  }
  DocId id = static_cast<DocId>(docs_.size());
  doc->set_id(id);
  auto idx = std::make_shared<DocumentIndexes>();
  idx->element = std::make_unique<ElementIndex>(*doc);
  idx->value = std::make_unique<ValueIndex>(*doc);
  by_name_.emplace(doc->name(), id);
  docs_.push_back(std::move(doc));
  indexes_.push_back(std::move(idx));
  ++live_docs_;
  return id;
}

Result<DocId> Corpus::AddXml(std::string_view xml, std::string doc_name) {
  ROX_ASSIGN_OR_RETURN(std::unique_ptr<Document> doc,
                       ParseXml(xml, std::move(doc_name), pool_));
  return Add(std::move(doc));
}

Result<DocId> Corpus::Resolve(std::string_view doc_name) const {
  auto it = by_name_.find(std::string(doc_name));
  if (it == by_name_.end()) {
    return Status::NotFound(StrCat("no such document: ", doc_name));
  }
  return it->second;
}

Result<DocId> CorpusBuilder::Add(std::unique_ptr<Document> doc) {
  ROX_ASSIGN_OR_RETURN(DocId id, next_.Add(std::move(doc)));
  ++added_;
  return id;
}

Result<DocId> CorpusBuilder::AddXml(std::string_view xml,
                                    std::string doc_name) {
  ROX_FAILPOINT("corpus.add_xml");
  ROX_ASSIGN_OR_RETURN(std::unique_ptr<Document> doc,
                       ParseXml(xml, std::move(doc_name), next_.pool_));
  return Add(std::move(doc));
}

Status CorpusBuilder::Remove(std::string_view doc_name) {
  auto it = next_.by_name_.find(std::string(doc_name));
  if (it == next_.by_name_.end()) {
    return Status::NotFound(StrCat("no such document: ", doc_name));
  }
  DocId id = it->second;
  next_.docs_[id] = nullptr;
  next_.indexes_[id] = nullptr;
  next_.by_name_.erase(it);
  --next_.live_docs_;
  ++removed_;
  return Status::Ok();
}

Corpus CorpusBuilder::Build() && {
  ++next_.epoch_;
  return std::move(next_);
}

}  // namespace rox
