#include "index/value_index.h"

#include <algorithm>

namespace rox {

const char* CmpOpName(CmpOp op) {
  switch (op) {
    case CmpOp::kEq:
      return "=";
    case CmpOp::kNe:
      return "!=";
    case CmpOp::kLt:
      return "<";
    case CmpOp::kLe:
      return "<=";
    case CmpOp::kGt:
      return ">";
    case CmpOp::kGe:
      return ">=";
  }
  return "?";
}

CmpOp SwapCmp(CmpOp op) {
  switch (op) {
    case CmpOp::kLt:
      return CmpOp::kGt;
    case CmpOp::kLe:
      return CmpOp::kGe;
    case CmpOp::kGt:
      return CmpOp::kLt;
    case CmpOp::kGe:
      return CmpOp::kLe;
    case CmpOp::kEq:
    case CmpOp::kNe:
      break;
  }
  return op;
}

ValueIndex::ValueIndex(const Document& doc, Pre lo, Pre hi) {
  const StringPool& pool = doc.pool();
  hi = std::min(hi, doc.NodeCount());
  for (Pre p = lo; p < hi; ++p) {
    NodeKind k = doc.Kind(p);
    if (k == NodeKind::kText) {
      ++text_node_count_;
      StringId v = doc.Value(p);
      text_by_value_[v].push_back(p);
      all_text_.push_back(p);
      if (auto num = pool.NumericValue(v)) {
        numeric_text_.push_back({*num, p});
      }
    } else if (k == NodeKind::kAttr) {
      ++attr_node_count_;
      StringId v = doc.Value(p);
      attr_by_value_[v].push_back(p);
      all_attr_.push_back(p);
      if (auto num = pool.NumericValue(v)) {
        numeric_attr_.push_back({*num, p});
      }
    }
  }
  auto by_value = [](const NumEntry& a, const NumEntry& b) {
    return a.value < b.value || (a.value == b.value && a.pre < b.pre);
  };
  std::sort(numeric_text_.begin(), numeric_text_.end(), by_value);
  std::sort(numeric_attr_.begin(), numeric_attr_.end(), by_value);
}

std::span<const Pre> ValueIndex::TextLookup(StringId v) const {
  auto it = text_by_value_.find(v);
  if (it == text_by_value_.end()) return {};
  return it->second;
}

std::span<const Pre> ValueIndex::AttrLookup(StringId v) const {
  auto it = attr_by_value_.find(v);
  if (it == attr_by_value_.end()) return {};
  return it->second;
}

std::vector<Pre> ValueIndex::AttrLookup(const Document& doc, StringId v,
                                        StringId qattr, StringId qelt) const {
  std::vector<Pre> out;
  for (Pre a : AttrLookup(v)) {
    if (qattr != kInvalidStringId && doc.Name(a) != qattr) continue;
    if (qelt != kInvalidStringId && doc.Name(doc.Parent(a)) != qelt) continue;
    out.push_back(a);
  }
  return out;
}

std::vector<Pre> ValueIndex::AttrOwnerLookup(const Document& doc, StringId v,
                                             StringId qelt,
                                             StringId qattr) const {
  std::vector<Pre> out;
  for (Pre a : AttrLookup(doc, v, qattr, qelt)) out.push_back(doc.Parent(a));
  return out;
}

std::vector<Pre> ValueIndex::RangeScan(const std::vector<NumEntry>& entries,
                                       const NumericRange& range) const {
  auto lo_it = std::lower_bound(
      entries.begin(), entries.end(), range.lo,
      [](const NumEntry& e, double v) { return e.value < v; });
  std::vector<Pre> out;
  for (auto it = lo_it; it != entries.end() && it->value <= range.hi; ++it) {
    if (range.Contains(it->value)) out.push_back(it->pre);
  }
  std::sort(out.begin(), out.end());
  return out;
}

std::vector<Pre> ValueIndex::TextRangeLookup(const NumericRange& range) const {
  return RangeScan(numeric_text_, range);
}

uint64_t ValueIndex::TextRangeCount(const NumericRange& range) const {
  auto lo_it = std::lower_bound(
      numeric_text_.begin(), numeric_text_.end(), range.lo,
      [](const NumEntry& e, double v) { return e.value < v; });
  uint64_t n = 0;
  for (auto it = lo_it; it != numeric_text_.end() && it->value <= range.hi;
       ++it) {
    if (range.Contains(it->value)) ++n;
  }
  return n;
}

std::vector<Pre> ValueIndex::AttrRangeLookup(const NumericRange& range) const {
  return RangeScan(numeric_attr_, range);
}

std::vector<Pre> ValueIndex::SampleText(StringId v, uint64_t k,
                                        Rng& rng) const {
  std::span<const Pre> all = TextLookup(v);
  std::vector<uint64_t> idx = rng.SampleWithoutReplacement(all.size(), k);
  std::vector<Pre> out;
  out.reserve(idx.size());
  for (uint64_t i : idx) out.push_back(all[i]);
  return out;
}

}  // namespace rox
