// Value index over text and attribute nodes.
//
// The paper's MonetDB/XQuery value index is an ordered store of
// (val, qelt, qattr, pre) tuples supporting equi- and range-lookup, with
// a hash-based variant for string equality (§2.2). We provide both:
//  * hash lookup by interned value id -> node list (equality predicates
//    and index nested-loop equi-joins),
//  * an ordered numeric projection -> range predicates like
//    `current/text() < 145`.
//
// Like the element index, a lookup yields the result *count* without
// materializing anything, and lists are in document order.

#ifndef ROX_INDEX_VALUE_INDEX_H_
#define ROX_INDEX_VALUE_INDEX_H_

#include <optional>
#include <span>
#include <unordered_map>
#include <vector>

#include "common/rng.h"
#include "xml/document.h"

namespace rox {

// Comparison operator of value predicates and value-join edges. Lives
// at the index layer so the join graph (edge annotation), the physical
// operators (theta kernels) and the XQuery frontend all share one
// vocabulary. Equality and inequality compare interned string ids;
// the four range operators compare numeric projections (non-numeric
// values never satisfy a range comparison).
enum class CmpOp : uint8_t { kEq, kNe, kLt, kLe, kGt, kGe };

// The surface syntax of `op` ("=", "!=", "<", "<=", ">", ">=").
const char* CmpOpName(CmpOp op);

// The operator seen from the other side: a OP b  <=>  b SwapCmp(OP) a.
// kEq/kNe are symmetric; kLt<->kGt and kLe<->kGe swap.
CmpOp SwapCmp(CmpOp op);

// Half-open / closed numeric interval with per-bound inclusivity, used
// for range-selection predicates on text and attribute values.
struct NumericRange {
  double lo = -1e308;
  double hi = 1e308;
  bool lo_inclusive = false;
  bool hi_inclusive = false;

  static NumericRange LessThan(double v) { return {-1e308, v, true, false}; }
  static NumericRange GreaterThan(double v) { return {v, 1e308, false, true}; }
  static NumericRange AtMost(double v) { return {-1e308, v, true, true}; }
  static NumericRange AtLeast(double v) { return {v, 1e308, true, true}; }
  static NumericRange Exactly(double v) { return {v, v, true, true}; }

  bool Contains(double v) const {
    if (v < lo || (v == lo && !lo_inclusive)) return false;
    if (v > hi || (v == hi && !hi_inclusive)) return false;
    return true;
  }
};

class ValueIndex {
 public:
  // Builds the index with one scan over `doc`. Element "content" is not
  // indexed directly; equality on element content goes through the
  // element's text child (as the paper's Join Graph vertices do).
  // The optional [lo, hi) bound restricts the index to nodes with pre
  // in that range (shard-local indexes); the defaults cover the whole
  // document.
  explicit ValueIndex(const Document& doc, Pre lo = 0, Pre hi = kInvalidPre);

  // --- equality lookups (hash-based) ------------------------------------

  // Text nodes whose value is exactly `v` (interned id), document order.
  std::span<const Pre> TextLookup(StringId v) const;

  // Attribute nodes with value `v`; `qattr`/`qelt` optionally restrict
  // the attribute name and the owner element name (kInvalidStringId = no
  // restriction). The unrestricted list is returned as a span; restricted
  // variants materialize the filtered list.
  std::span<const Pre> AttrLookup(StringId v) const;
  std::vector<Pre> AttrLookup(const Document& doc, StringId v, StringId qattr,
                              StringId qelt) const;

  // The paper's D³attr(v, qelt, qattr): *owner elements* (not attribute
  // nodes) named `qelt` having attribute `qattr` = v.
  std::vector<Pre> AttrOwnerLookup(const Document& doc, StringId v,
                                   StringId qelt, StringId qattr) const;

  // --- numeric range lookups (ordered) -----------------------------------

  // Text nodes whose numeric value lies in `range`, document order.
  std::vector<Pre> TextRangeLookup(const NumericRange& range) const;
  uint64_t TextRangeCount(const NumericRange& range) const;

  // Attribute nodes whose numeric value lies in `range`.
  std::vector<Pre> AttrRangeLookup(const NumericRange& range) const;

  // --- sorted runs (theta-join probes) ------------------------------------

  // (numeric value, pre) pairs sorted ascending by (value, pre). A
  // range-comparison probe binary-searches the run and emits a prefix
  // or suffix — the sort-based value-join kernels of exec/value_join.h
  // read these directly instead of materializing per-probe lookups.
  struct NumEntry {
    double value;
    Pre pre;
  };
  std::span<const NumEntry> NumericTextRun() const { return numeric_text_; }
  std::span<const NumEntry> NumericAttrRun() const { return numeric_attr_; }

  // All indexed text/attribute nodes in document order (every such node
  // carries a value). `!=` probes scan these and skip the equal ones.
  std::span<const Pre> AllTextNodes() const { return all_text_; }
  std::span<const Pre> AllAttrNodes() const { return all_attr_; }

  // --- sampling -----------------------------------------------------------

  // Uniform sample (without replacement, document order) of text nodes
  // with value `v`.
  std::vector<Pre> SampleText(StringId v, uint64_t k, Rng& rng) const;

  // Total indexed node counts.
  uint64_t text_node_count() const { return text_node_count_; }
  uint64_t attr_node_count() const { return attr_node_count_; }

 private:
  std::vector<Pre> RangeScan(const std::vector<NumEntry>& entries,
                             const NumericRange& range) const;

  std::unordered_map<StringId, std::vector<Pre>> text_by_value_;
  std::unordered_map<StringId, std::vector<Pre>> attr_by_value_;
  std::vector<NumEntry> numeric_text_;
  std::vector<NumEntry> numeric_attr_;
  std::vector<Pre> all_text_;
  std::vector<Pre> all_attr_;
  uint64_t text_node_count_ = 0;
  uint64_t attr_node_count_ = 0;
};

}  // namespace rox

#endif  // ROX_INDEX_VALUE_INDEX_H_
