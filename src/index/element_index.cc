#include "index/element_index.h"

#include <algorithm>

namespace rox {

ElementIndex::ElementIndex(const Document& doc, Pre lo, Pre hi) {
  const auto& kinds = doc.kinds();
  const auto& names = doc.name_ids();
  hi = std::min(hi, doc.NodeCount());
  for (Pre p = lo; p < hi; ++p) {
    StringId q = names[p];
    if (kinds[p] == NodeKind::kElem) {
      if (q >= by_name_.size()) by_name_.resize(q + 1);
      by_name_[q].push_back(p);  // pre order => already sorted
    } else if (kinds[p] == NodeKind::kAttr) {
      if (q >= attr_by_name_.size()) attr_by_name_.resize(q + 1);
      attr_by_name_[q].push_back(p);
    }
  }
}

std::span<const Pre> ElementIndex::Lookup(StringId q) const {
  if (q >= by_name_.size()) return {};
  return by_name_[q];
}

std::vector<Pre> ElementIndex::Sample(StringId q, uint64_t k, Rng& rng) const {
  std::span<const Pre> all = Lookup(q);
  std::vector<uint64_t> idx = rng.SampleWithoutReplacement(all.size(), k);
  std::vector<Pre> out;
  out.reserve(idx.size());
  for (uint64_t i : idx) out.push_back(all[i]);
  return out;
}

std::span<const Pre> ElementIndex::RangeLookup(StringId q, Pre lo,
                                               Pre hi) const {
  std::span<const Pre> all = Lookup(q);
  auto begin = std::upper_bound(all.begin(), all.end(), lo);
  auto end = std::upper_bound(begin, all.end(), hi);
  return all.subspan(static_cast<size_t>(begin - all.begin()),
                     static_cast<size_t>(end - begin));
}

std::span<const Pre> ElementIndex::LookupAttr(StringId q) const {
  if (q >= attr_by_name_.size()) return {};
  return attr_by_name_[q];
}

std::vector<Pre> ElementIndex::SampleAttr(StringId q, uint64_t k,
                                          Rng& rng) const {
  std::span<const Pre> all = LookupAttr(q);
  std::vector<uint64_t> idx = rng.SampleWithoutReplacement(all.size(), k);
  std::vector<Pre> out;
  out.reserve(idx.size());
  for (uint64_t i : idx) out.push_back(all[i]);
  return out;
}

std::vector<StringId> ElementIndex::Names() const {
  std::vector<StringId> out;
  for (StringId q = 0; q < by_name_.size(); ++q) {
    if (!by_name_[q].empty()) out.push_back(q);
  }
  return out;
}

}  // namespace rox
