#include "index/sharded_corpus.h"

#include <algorithm>

#include "common/thread_pool.h"

namespace rox {

ShardedCorpus::ShardedCorpus(const Corpus& corpus, size_t num_shards,
                             ThreadPool* pool)
    : corpus_(&corpus), num_shards_(std::max<size_t>(num_shards, 1)) {
  shards_.resize(corpus.DocCount());
  for (DocId d = 0; d < corpus.DocCount(); ++d) {
    shards_[d].resize(num_shards_);
    Pre n = corpus.doc(d).NodeCount();
    for (size_t s = 0; s < num_shards_; ++s) {
      // Near-equal node counts; a document smaller than K leaves the
      // tail shards empty, which every consumer tolerates.
      shards_[d][s].range.begin = static_cast<Pre>(
          static_cast<uint64_t>(n) * s / num_shards_);
      shards_[d][s].range.end = static_cast<Pre>(
          static_cast<uint64_t>(n) * (s + 1) / num_shards_);
    }
  }
  // Index builds are independent per (document, shard); flatten them
  // into one parallel loop.
  ParallelFor(pool, corpus.DocCount() * num_shards_, [&](size_t i) {
    DocId d = static_cast<DocId>(i / num_shards_);
    size_t s = i % num_shards_;
    DocumentShard& shard = shards_[d][s];
    const Document& doc = corpus_->doc(d);
    shard.element =
        std::make_unique<ElementIndex>(doc, shard.range.begin,
                                       shard.range.end);
    shard.value = std::make_unique<ValueIndex>(doc, shard.range.begin,
                                               shard.range.end);
  });
}

void ShardedCorpus::Partition(DocId d, std::span<const Pre> nodes,
                              std::vector<std::span<const Pre>>* parts,
                              std::vector<uint32_t>* offsets) const {
  parts->clear();
  offsets->clear();
  parts->reserve(num_shards_);
  offsets->reserve(num_shards_);
  size_t lo = 0;
  for (size_t s = 0; s < num_shards_; ++s) {
    const ShardRange& r = shards_[d][s].range;
    auto end_it = std::lower_bound(nodes.begin() + lo, nodes.end(), r.end);
    size_t hi = static_cast<size_t>(end_it - nodes.begin());
    offsets->push_back(static_cast<uint32_t>(lo));
    parts->push_back(nodes.subspan(lo, hi - lo));
    lo = hi;
  }
}

}  // namespace rox
