#include "index/sharded_corpus.h"

#include <algorithm>
#include <utility>

#include "common/thread_pool.h"

namespace rox {

ShardedCorpus::ShardedCorpus(const Corpus& corpus, size_t num_shards,
                             ThreadPool* pool)
    : corpus_(&corpus), num_shards_(std::max<size_t>(num_shards, 1)) {
  Build(nullptr, pool);
}

ShardedCorpus::ShardedCorpus(const Corpus& corpus, const ShardedCorpus& prev,
                             ThreadPool* pool)
    : corpus_(&corpus), num_shards_(prev.num_shards_) {
  Build(&prev, pool);
}

void ShardedCorpus::Build(const ShardedCorpus* reuse_from, ThreadPool* pool) {
  const size_t doc_count = corpus_->DocCount();
  shards_.resize(doc_count);

  // Freshly built (mutable) shard vectors, and the flattened list of
  // (doc, shard) index builds they need.
  std::vector<std::shared_ptr<DocShards>> fresh(doc_count);
  std::vector<std::pair<DocId, size_t>> jobs;
  for (DocId d = 0; d < doc_count; ++d) {
    const Document* doc = corpus_->DocPtrOrNull(d);
    if (doc == nullptr) continue;  // tombstone: no shards
    if (reuse_from != nullptr && d < reuse_from->shards_.size() &&
        reuse_from->corpus_->DocPtrOrNull(d) == doc) {
      // Unchanged document: share the previous epoch's shard vector
      // (ranges and indexes) wholesale.
      shards_[d] = reuse_from->shards_[d];
      ++reused_docs_;
      continue;
    }
    auto doc_shards = std::make_shared<DocShards>(num_shards_);
    Pre n = doc->NodeCount();
    for (size_t s = 0; s < num_shards_; ++s) {
      // Near-equal node counts; a document smaller than K leaves the
      // tail shards empty, which every consumer tolerates.
      (*doc_shards)[s].range.begin = static_cast<Pre>(
          static_cast<uint64_t>(n) * s / num_shards_);
      (*doc_shards)[s].range.end = static_cast<Pre>(
          static_cast<uint64_t>(n) * (s + 1) / num_shards_);
      jobs.emplace_back(d, s);
    }
    fresh[d] = doc_shards;
    shards_[d] = std::move(doc_shards);
    ++rebuilt_docs_;
  }

  // Index builds are independent per (document, shard); run the
  // flattened list in one parallel loop.
  ParallelFor(pool, jobs.size(), [&](size_t i) {
    auto [d, s] = jobs[i];
    DocumentShard& shard = (*fresh[d])[s];
    const Document& doc = corpus_->doc(d);
    shard.element =
        std::make_unique<ElementIndex>(doc, shard.range.begin,
                                       shard.range.end);
    shard.value = std::make_unique<ValueIndex>(doc, shard.range.begin,
                                               shard.range.end);
  });
}

void ShardedCorpus::Partition(DocId d, std::span<const Pre> nodes,
                              std::vector<std::span<const Pre>>* parts,
                              std::vector<uint32_t>* offsets) const {
  parts->clear();
  offsets->clear();
  parts->reserve(num_shards_);
  offsets->reserve(num_shards_);
  const DocShards& shards = *shards_[d];
  size_t lo = 0;
  for (size_t s = 0; s < num_shards_; ++s) {
    const ShardRange& r = shards[s].range;
    auto end_it = std::lower_bound(nodes.begin() + lo, nodes.end(), r.end);
    size_t hi = static_cast<size_t>(end_it - nodes.begin());
    offsets->push_back(static_cast<uint32_t>(lo));
    parts->push_back(nodes.subspan(lo, hi - lo));
    lo = hi;
  }
}

}  // namespace rox
