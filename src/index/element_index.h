// Element name index: qname -> sorted list of element pre ranks.
//
// This is the paper's D³elt(q) lookup (§2.2): given a qualified name it
// returns, in document order and duplicate-free, all elements with that
// name. Because the per-name lists are materialized, the *count* of
// qualifying nodes is O(1) — the property ROX's phase-1 initialization
// relies on — and uniform random samples can be drawn in O(sample size)
// (the "partial sum tree" sampling of [26] degenerates to direct
// indexing on a dense materialized list).

#ifndef ROX_INDEX_ELEMENT_INDEX_H_
#define ROX_INDEX_ELEMENT_INDEX_H_

#include <span>
#include <vector>

#include "common/rng.h"
#include "xml/document.h"

namespace rox {

class ElementIndex {
 public:
  // Builds the index with one scan over `doc`. The optional [lo, hi)
  // bound restricts the index to nodes with pre in that range — the
  // shard-local indexes of a ShardedCorpus are built this way; the
  // defaults cover the whole document.
  explicit ElementIndex(const Document& doc, Pre lo = 0,
                        Pre hi = kInvalidPre);

  // All elements named `q`, in document order. Empty span if none.
  std::span<const Pre> Lookup(StringId q) const;

  // O(1) count of elements named `q`.
  uint64_t Count(StringId q) const { return Lookup(q).size(); }

  // Uniform random sample (without replacement) of up to `k` elements
  // named `q`, in document order.
  std::vector<Pre> Sample(StringId q, uint64_t k, Rng& rng) const;

  // Elements named `q` with pre in the half-open interval (`lo`, `hi`]:
  // exactly the descendants-of-`lo` probe used by index-accelerated
  // descendant steps. O(log n + |result|).
  std::span<const Pre> RangeLookup(StringId q, Pre lo, Pre hi) const;

  // Distinct element names present in the document.
  std::vector<StringId> Names() const;

  // --- attribute nodes (same machinery, keyed by attribute name) --------

  // All attribute nodes named `q`, in document order.
  std::span<const Pre> LookupAttr(StringId q) const;
  uint64_t CountAttr(StringId q) const { return LookupAttr(q).size(); }
  std::vector<Pre> SampleAttr(StringId q, uint64_t k, Rng& rng) const;

 private:
  // name id -> sorted pre list. Name ids are dense per corpus pool, so a
  // vector indexed by name id is used, with empty vectors for non-element
  // names.
  std::vector<std::vector<Pre>> by_name_;
  std::vector<std::vector<Pre>> attr_by_name_;
};

}  // namespace rox

#endif  // ROX_INDEX_ELEMENT_INDEX_H_
