// A corpus bundles the documents of an experiment with their indexes
// and the shared string pool.
//
// In the paper, fn:doc(url) resolves documents at run time; the corpus
// plays the role of that resolver, and building the per-document element
// and value indexes corresponds to MonetDB/XQuery's shredding-time index
// construction.

#ifndef ROX_INDEX_CORPUS_H_
#define ROX_INDEX_CORPUS_H_

#include <memory>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "common/status.h"
#include "index/element_index.h"
#include "index/value_index.h"
#include "xml/document.h"

namespace rox {

// Per-document index bundle.
struct DocumentIndexes {
  std::unique_ptr<ElementIndex> element;
  std::unique_ptr<ValueIndex> value;
};

class Corpus {
 public:
  Corpus() : pool_(std::make_shared<StringPool>()) {}

  Corpus(const Corpus&) = delete;
  Corpus& operator=(const Corpus&) = delete;
  Corpus(Corpus&&) = default;
  Corpus& operator=(Corpus&&) = default;

  // The pool to hand to DocumentBuilder / ParseXml so all documents of
  // this corpus share interned ids.
  std::shared_ptr<StringPool> pool() const { return pool_; }
  const StringPool& string_pool() const { return *pool_; }

  // Adds a document (which must use this corpus's pool) and builds its
  // indexes. Returns the assigned DocId.
  Result<DocId> Add(std::unique_ptr<Document> doc);

  // Parses and adds an XML string.
  Result<DocId> AddXml(std::string_view xml, std::string doc_name);

  size_t DocCount() const { return docs_.size(); }
  const Document& doc(DocId id) const { return *docs_[id]; }
  const ElementIndex& element_index(DocId id) const {
    return *indexes_[id].element;
  }
  const ValueIndex& value_index(DocId id) const {
    return *indexes_[id].value;
  }

  // Resolves a document by name (the fn:doc(url) analogue).
  Result<DocId> Resolve(std::string_view doc_name) const;

  // Interning helpers on the shared pool.
  StringId Intern(std::string_view s) { return pool_->Intern(s); }
  StringId Find(std::string_view s) const { return pool_->Find(s); }

 private:
  std::shared_ptr<StringPool> pool_;
  std::vector<std::unique_ptr<Document>> docs_;
  std::vector<DocumentIndexes> indexes_;
  std::unordered_map<std::string, DocId> by_name_;
};

}  // namespace rox

#endif  // ROX_INDEX_CORPUS_H_
