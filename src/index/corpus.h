// A corpus bundles the documents of an experiment with their indexes
// and the shared string pool.
//
// In the paper, fn:doc(url) resolves documents at run time; the corpus
// plays the role of that resolver, and building the per-document element
// and value indexes corresponds to MonetDB/XQuery's shredding-time index
// construction.
//
// Versioning (DESIGN.md §10). A Corpus is one *epoch*: an immutable
// value once it is served. Documents and index bundles are held by
// shared_ptr, so producing the next epoch is a copy-on-write delta —
// CorpusBuilder copies the slot vectors (cheap pointer copies), parses
// and indexes only the new documents, tombstones removed ones, and
// Build() stamps epoch+1. DocIds are slot positions and are never
// reused; the StringPool is shared append-only across every epoch of
// the lineage, so interned ids stay stable and cross-epoch cached
// StringIds remain valid. A CorpusSnapshot pins one epoch for the
// duration of a query: everything it can reach is frozen.

#ifndef ROX_INDEX_CORPUS_H_
#define ROX_INDEX_CORPUS_H_

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "common/check.h"
#include "common/status.h"
#include "index/element_index.h"
#include "index/value_index.h"
#include "xml/document.h"

namespace rox {

// Per-document index bundle.
struct DocumentIndexes {
  std::unique_ptr<ElementIndex> element;
  std::unique_ptr<ValueIndex> value;
};

// One corpus epoch. Mutable only while being built (initial Add/AddXml
// calls, or inside a CorpusBuilder); immutable once served.
class Corpus {
 public:
  Corpus() : pool_(std::make_shared<StringPool>()) {}

  // Copying is cheap and shares the immutable documents and indexes —
  // it is how CorpusBuilder starts the next epoch's delta.
  Corpus(const Corpus&) = default;
  Corpus& operator=(const Corpus&) = default;
  Corpus(Corpus&&) = default;
  Corpus& operator=(Corpus&&) = default;

  // Which epoch this corpus value is. 0 for a freshly built corpus;
  // CorpusBuilder::Build stamps base epoch + 1.
  uint64_t epoch() const { return epoch_; }

  // The pool to hand to DocumentBuilder / ParseXml so all documents of
  // this corpus share interned ids.
  std::shared_ptr<StringPool> pool() const { return pool_; }
  const StringPool& string_pool() const { return *pool_; }

  // Adds a document (which must use this corpus's pool) and builds its
  // indexes. Returns the assigned DocId.
  Result<DocId> Add(std::unique_ptr<Document> doc);

  // Parses and adds an XML string.
  Result<DocId> AddXml(std::string_view xml, std::string doc_name);

  // Slot count: live documents plus tombstones of removed ones. DocIds
  // are in [0, DocCount()), but a slot may be dead — check IsLive when
  // iterating; resolved ids are always live.
  size_t DocCount() const { return docs_.size(); }
  size_t LiveDocCount() const { return live_docs_; }
  bool IsLive(DocId id) const {
    return id < docs_.size() && docs_[id] != nullptr;
  }

  const Document& doc(DocId id) const {
    ROX_DCHECK(IsLive(id));
    return *docs_[id];
  }
  const ElementIndex& element_index(DocId id) const {
    return *indexes_[id]->element;
  }
  const ValueIndex& value_index(DocId id) const {
    return *indexes_[id]->value;
  }

  // The shared document pointer of a slot (null for tombstones / out of
  // range). Pointer identity across epochs means "unchanged document" —
  // the test ShardedCorpus's incremental rebuild relies on.
  const Document* DocPtrOrNull(DocId id) const {
    return id < docs_.size() ? docs_[id].get() : nullptr;
  }

  // Resolves a document by name (the fn:doc(url) analogue).
  Result<DocId> Resolve(std::string_view doc_name) const;

  // Interning helpers on the shared pool.
  StringId Intern(std::string_view s) { return pool_->Intern(s); }
  StringId Find(std::string_view s) const { return pool_->Find(s); }

 private:
  friend class CorpusBuilder;

  uint64_t epoch_ = 0;
  size_t live_docs_ = 0;
  std::shared_ptr<StringPool> pool_;
  std::vector<std::shared_ptr<const Document>> docs_;       // null = removed
  std::vector<std::shared_ptr<const DocumentIndexes>> indexes_;
  std::unordered_map<std::string, DocId> by_name_;          // live docs only
};

// A pinned, epoch-numbered immutable view of a corpus. Owning
// snapshots (constructed from a shared_ptr) keep the epoch alive for
// as long as any holder exists — the engine hands one to every
// in-flight query, so a publish of epoch E+1 never frees what a query
// pinned at E is reading. The implicit conversion from a plain
// `const Corpus&` forms an *unowned* snapshot for callers that stack-
// own their corpus (tests, benches, single-epoch tools) and guarantee
// its lifetime themselves.
class CorpusSnapshot {
 public:
  CorpusSnapshot(const Corpus& corpus)  // NOLINT: implicit by design
      : corpus_(&corpus) {}
  explicit CorpusSnapshot(std::shared_ptr<const Corpus> pinned)
      : corpus_(pinned.get()), pinned_(std::move(pinned)) {
    ROX_CHECK(corpus_ != nullptr);
  }

  const Corpus& operator*() const { return *corpus_; }
  const Corpus* operator->() const { return corpus_; }
  const Corpus& corpus() const { return *corpus_; }
  uint64_t epoch() const { return corpus_->epoch(); }

  // True when this snapshot shares ownership (pins the epoch).
  bool pinned() const { return pinned_ != nullptr; }
  const std::shared_ptr<const Corpus>& shared() const { return pinned_; }

 private:
  const Corpus* corpus_;
  std::shared_ptr<const Corpus> pinned_;
};

// Copy-on-write construction of the next corpus epoch. Starts from a
// base epoch, records added/removed documents, and Build() produces
// the epoch+1 Corpus value. Only the new documents are parsed and
// indexed; every untouched document (and its indexes) is shared with
// the base by pointer. Not thread-safe; the engine serializes builders
// with its ingest lock. The base corpus is never modified.
class CorpusBuilder {
 public:
  explicit CorpusBuilder(const Corpus& base) : next_(base) {}

  // Adds a parsed document (which must use the lineage's shared pool).
  // Removed-then-readded names get a fresh DocId; slots are never
  // reused.
  Result<DocId> Add(std::unique_ptr<Document> doc);

  // Parses and adds an XML string (interning into the shared pool —
  // safe while older epochs serve queries).
  Result<DocId> AddXml(std::string_view xml, std::string doc_name);

  // Tombstones the named document: its slot stays (pinned snapshots of
  // older epochs still use the DocId) but the next epoch no longer
  // resolves or serves it.
  Status Remove(std::string_view doc_name);

  size_t added_docs() const { return added_; }
  size_t removed_docs() const { return removed_; }

  // The next epoch. The builder is consumed.
  Corpus Build() &&;

 private:
  Corpus next_;
  size_t added_ = 0;
  size_t removed_ = 0;
};

}  // namespace rox

#endif  // ROX_INDEX_CORPUS_H_
