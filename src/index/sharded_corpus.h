// A sharded view over one frozen corpus epoch for parallel intra-query
// execution.
//
// Every document's node-id (pre) range [0, NodeCount) is partitioned
// into K contiguous shards of near-equal node count; each shard owns
// its own element and value indexes, built by scanning only the
// shard's range. Because shard ranges are disjoint and contiguous,
//  * a per-shard index lookup, concatenated in shard order, reproduces
//    the full-document lookup exactly (document order preserved), and
//  * per-shard partial join results merge by plain concatenation — no
//    deduplication, no re-sort of the pair lists.
// The documents themselves stay whole and shared: a shard restricts
// which nodes *drive* an operator, while structural navigation (parent
// chains, subtree ranges) still sees the full tree, so cross-shard
// axis results and cross-shard value-join matches are never lost.
//
// The sharding is an execution accelerator only: node ids, query
// compilation and result semantics are untouched, which is what makes
// 1-shard execution bit-identical to the unsharded executor and
// K-shard execution produce identical final item sequences.
//
// Epochs (DESIGN.md §10). A ShardedCorpus belongs to exactly one
// corpus epoch. Publishing the next epoch rebuilds the view
// *incrementally*: per-document shard vectors are shared_ptr-held, so
// the rebuild shares them wholesale for every document whose Document
// object is pointer-identical across the two epochs and builds indexes
// only for added/replaced documents. Tombstoned slots carry no shards.

#ifndef ROX_INDEX_SHARDED_CORPUS_H_
#define ROX_INDEX_SHARDED_CORPUS_H_

#include <memory>
#include <span>
#include <vector>

#include "index/corpus.h"

namespace rox {

class ThreadPool;

// Half-open pre range [begin, end) of one shard of one document.
struct ShardRange {
  Pre begin = 0;
  Pre end = 0;

  uint32_t size() const { return end - begin; }
  bool empty() const { return begin == end; }
  bool Contains(Pre p) const { return begin <= p && p < end; }
};

class ShardedCorpus {
 public:
  // Partitions every live document of `corpus` into `num_shards`
  // contiguous ranges and builds the per-shard indexes, in parallel on
  // `pool` (inline when null). The corpus epoch must outlive this view
  // (the Engine pins both in one published state).
  ShardedCorpus(const Corpus& corpus, size_t num_shards, ThreadPool* pool);

  // Incremental rebuild for the next epoch: shares `prev`'s per-
  // document shard vectors (ranges and indexes) for every document
  // whose Document object is unchanged between prev's corpus and
  // `corpus`, and builds only the rest. Shard count is inherited from
  // `prev`.
  ShardedCorpus(const Corpus& corpus, const ShardedCorpus& prev,
                ThreadPool* pool);

  ShardedCorpus(const ShardedCorpus&) = delete;
  ShardedCorpus& operator=(const ShardedCorpus&) = delete;

  const Corpus& corpus() const { return *corpus_; }
  size_t num_shards() const { return num_shards_; }

  // Incremental-rebuild accounting (full builds count every live
  // document as rebuilt).
  size_t reused_docs() const { return reused_docs_; }
  size_t rebuilt_docs() const { return rebuilt_docs_; }

  const ShardRange& range(DocId d, size_t s) const {
    return (*shards_[d])[s].range;
  }
  const ElementIndex& element_index(DocId d, size_t s) const {
    return *(*shards_[d])[s].element;
  }
  const ValueIndex& value_index(DocId d, size_t s) const {
    return *(*shards_[d])[s].value;
  }

  // Splits a pre-sorted node list of document `d` at the shard
  // boundaries: parts->at(s) is the (possibly empty) subspan of nodes
  // inside range(d, s) and offsets->at(s) its start position in
  // `nodes`. The concatenation of all parts is `nodes` itself.
  void Partition(DocId d, std::span<const Pre> nodes,
                 std::vector<std::span<const Pre>>* parts,
                 std::vector<uint32_t>* offsets) const;

 private:
  struct DocumentShard {
    ShardRange range;
    std::unique_ptr<ElementIndex> element;
    std::unique_ptr<ValueIndex> value;
  };
  // One document's shards, shared across epochs when unchanged.
  using DocShards = std::vector<DocumentShard>;

  // Builds shards_ entries for every live document of corpus_ that
  // `reuse_from` (nullable) does not cover with an identical document.
  void Build(const ShardedCorpus* reuse_from, ThreadPool* pool);

  const Corpus* corpus_;
  size_t num_shards_;
  size_t reused_docs_ = 0;
  size_t rebuilt_docs_ = 0;
  // [doc] -> shards of that document; null for tombstoned slots.
  std::vector<std::shared_ptr<const DocShards>> shards_;
};

// Everything a sharded fan-out needs, bundled so it can thread through
// RoxOptions as one pointer. The pool must be distinct from the pool
// whose workers wait on queries (the Engine keeps a dedicated
// shard pool), though ParallelFor's caller-participation makes even a
// shared pool safe. The Engine publishes one bundle per epoch, inside
// the same pinned state as the corpus and sharded view it points at.
struct ShardedExec {
  const ShardedCorpus* shards = nullptr;
  ThreadPool* pool = nullptr;

  // Which shard's indexes serve ROX Phase-1 sample draws. The default
  // kSampleUnion draws from the corpus's full-document indexes — the
  // same distribution the unsharded optimizer samples, keeping
  // optimizer behavior identical to the paper. A value in [0, K)
  // designates that shard: draws then touch only its index lists
  // (cardinalities stay exact via the O(1) full counts), at the cost
  // of layout skew — a contiguous shard may under-represent element
  // kinds that cluster elsewhere in the document.
  static constexpr int kSampleUnion = -1;
  int sample_shard = kSampleUnion;

  bool Enabled() const {
    return shards != nullptr && shards->num_shards() > 1;
  }
};

}  // namespace rox

#endif  // ROX_INDEX_SHARDED_CORPUS_H_
