// Quickstart: parse XML, write an XQuery, let ROX optimize and run it.
//
//   $ ./quickstart
//
// Demonstrates the 5-minute path through the public API:
//   1. Corpus::AddXml            — shred documents (indexes built on add)
//   2. xq::CompileXQuery         — XQuery -> Join Graph
//   3. xq::RunXQuery             — ROX run-time optimization + execution
//   4. SerializeSubtree          — show the results

#include <cstdio>

#include "index/corpus.h"
#include "xml/parser.h"
#include "xq/compile.h"

int main() {
  using namespace rox;

  // 1. A tiny two-document corpus.
  Corpus corpus;
  auto lib = corpus.AddXml(R"(
    <library>
      <book year="2009"><title>Run-time Optimization</title>
        <author>Riham</author><author>Peter</author></book>
      <book year="1994"><title>Volcano</title><author>Goetz</author></book>
      <book year="2009"><title>Column Stores</title><author>Peter</author>
      </book>
    </library>)",
                           "library.xml");
  auto people = corpus.AddXml(R"(
    <people>
      <person><name>Peter</name><city>Amsterdam</city></person>
      <person><name>Riham</name><city>Enschede</city></person>
      <person><name>Daniel</name><city>Munich</city></person>
    </people>)",
                              "people.xml");
  if (!lib.ok() || !people.ok()) {
    std::fprintf(stderr, "parse failed: %s\n",
                 (!lib.ok() ? lib : people).status().ToString().c_str());
    return 1;
  }

  // 2. Book authors joined with the people registry by name.
  const char* query = R"(
    for $a in doc("library.xml")//book//author,
        $p in doc("people.xml")//person/name
    where $a/text() = $p/text()
    return $p
  )";

  auto compiled = xq::CompileXQuery(corpus, query);
  if (!compiled.ok()) {
    std::fprintf(stderr, "compile failed: %s\n",
                 compiled.status().ToString().c_str());
    return 1;
  }
  std::printf("Join Graph (%zu vertices, %zu edges):\n%s\n",
              compiled->graph.VertexCount(), compiled->graph.EdgeCount(),
              compiled->graph.ToDot().c_str());

  // 3. Run: ROX samples, orders, and executes the join graph.
  RoxOptions options;
  options.tau = 4;  // tiny documents, tiny sample
  RoxStats stats;
  auto result = xq::RunXQuery(corpus, *compiled, options, &stats);
  if (!result.ok()) {
    std::fprintf(stderr, "run failed: %s\n",
                 result.status().ToString().c_str());
    return 1;
  }

  // 4. Print the result sequence.
  std::printf("%zu result items:\n", result->size());
  const Document& doc = corpus.doc(*people);
  for (Pre p : *result) {
    std::printf("  %s\n", SerializeSubtree(doc, p).c_str());
  }
  std::printf(
      "\nexecuted %llu edges; sampling %.3f ms, execution %.3f ms\n",
      static_cast<unsigned long long>(stats.edges_executed),
      stats.sampling_time.TotalMillis(), stats.execution_time.TotalMillis());
  return 0;
}
