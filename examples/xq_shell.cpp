// Interactive XQuery shell over the concurrent query engine.
//
//   $ ./xq_shell [--num_shards=K] [--trace_level=off|spans|full]
//                [--deadline_ms=N] [--memory_budget_mb=N] [--json]
//                file1.xml file2.xml ...
//
// Loads the given XML files into a corpus (doc("<basename>") resolves
// them), hands the corpus to an Engine, then reads XQueries from stdin
// (terminated by a line with just ";") and executes each through the
// engine — so repeated queries hit the plan/weight/result cache exactly
// as they would on a server. With no files, a demo XMark document is
// generated as doc("xmark.xml"). --num_shards=K (default 1) turns on
// sharded intra-query execution: each query's materialization steps
// fan out over K corpus shards (\stats shows the per-shard row
// counts). --trace_level=spans|full (default off) records a flight-
// recorder trace for every query, not just \profile's (DESIGN.md §12).
// --deadline_ms=N / --memory_budget_mb=N (default 0 = unlimited) apply
// a per-query deadline / memory budget to every query (DESIGN.md §13):
// a query past either limit unwinds cooperatively with
// kDeadlineExceeded / kResourceExhausted instead of running on.
// --json prints each query's answer as the stable QueryResponse wire
// JSON (DESIGN.md §15) — byte-identical to what the roxd HTTP server
// returns for the same query — instead of the human-readable listing.
//
// The corpus is *live* (DESIGN.md §10): \load and \drop publish new
// epochs while the engine keeps serving — queries in flight finish on
// the epoch they started on.
//
// Commands:
//   \docs               list documents of the current epoch
//   \load FILE [NAME]   ingest FILE as doc("NAME") (default: basename)
//   \drop NAME          remove doc("NAME") in a new epoch
//   \epoch              current epoch + publish counters
//   \stats  engine statistics (latency percentiles, cache hit rates)
//   \cache  query cache contents (most recently used first)
//   \explain QUERY      compile + ROX Phase-1 estimates, no execution
//   \profile QUERY      execute with a full trace; print the span tree
//   \metrics            process-wide metrics registry (text exposition)
//   \kill               cancel every in-flight query (cooperative: each
//                       unwinds at its next checkpoint with kCancelled)
//   \wait               collect results of background queries
//   \quit
//
// A query terminated by "&" instead of ";" runs in the background on
// the engine's pool — the prompt returns immediately, \kill can cancel
// it, and \wait (or \quit) collects its result.

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "engine/engine.h"
#include "index/corpus.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "workload/xmark.h"
#include "xml/parser.h"

namespace {

std::string Basename(const std::string& path) {
  size_t slash = path.find_last_of('/');
  return slash == std::string::npos ? path : path.substr(slash + 1);
}

bool ReadFile(const std::string& path, std::string* out) {
  std::ifstream in(path);
  if (!in) return false;
  std::stringstream buf;
  buf << in.rdbuf();
  *out = buf.str();
  return true;
}

// Splits "\cmd arg1 arg2" into whitespace-separated tokens.
std::vector<std::string> Tokenize(const std::string& line) {
  std::vector<std::string> out;
  std::istringstream in(line);
  std::string tok;
  while (in >> tok) out.push_back(tok);
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace rox;
  Corpus corpus;

  size_t num_shards = 1;
  obs::TraceLevel trace_level = obs::TraceLevel::kOff;
  QueryLimits limits;
  bool json_output = false;
  std::vector<char*> files;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--json") {
      json_output = true;
      continue;
    }
    const std::string prefix = "--num_shards=";
    const std::string trace_prefix = "--trace_level=";
    const std::string deadline_prefix = "--deadline_ms=";
    const std::string budget_prefix = "--memory_budget_mb=";
    if (arg.rfind(deadline_prefix, 0) == 0 ||
        arg.rfind(budget_prefix, 0) == 0) {
      bool is_deadline = arg.rfind(deadline_prefix, 0) == 0;
      size_t skip = is_deadline ? deadline_prefix.size()
                                : budget_prefix.size();
      char* end = nullptr;
      long v = std::strtol(arg.c_str() + skip, &end, 10);
      if (end == nullptr || *end != '\0' || v < 0) {
        std::fprintf(stderr, "invalid %s (want a non-negative integer)\n",
                     arg.c_str());
        return 2;
      }
      if (is_deadline) {
        limits.deadline_ms = static_cast<double>(v);
      } else {
        limits.memory_budget_bytes =
            static_cast<uint64_t>(v) * 1024 * 1024;
      }
    } else if (arg.rfind(prefix, 0) == 0) {
      char* end = nullptr;
      long v = std::strtol(arg.c_str() + prefix.size(), &end, 10);
      if (end == nullptr || *end != '\0' || v < 1 || v > 1024) {
        std::fprintf(stderr,
                     "invalid %s (want a positive integer <= 1024)\n",
                     arg.c_str());
        return 2;
      }
      num_shards = static_cast<size_t>(v);
    } else if (arg.rfind(trace_prefix, 0) == 0) {
      if (!obs::ParseTraceLevel(arg.c_str() + trace_prefix.size(),
                                &trace_level)) {
        std::fprintf(stderr, "invalid %s (want off, spans, or full)\n",
                     arg.c_str());
        return 2;
      }
    } else {
      files.push_back(argv[i]);
    }
  }

  if (!files.empty()) {
    for (char* file : files) {
      std::string xml;
      if (!ReadFile(file, &xml)) {
        std::fprintf(stderr, "cannot open %s\n", file);
        return 1;
      }
      auto id = corpus.AddXml(xml, Basename(file));
      if (!id.ok()) {
        std::fprintf(stderr, "%s: %s\n", file,
                     id.status().ToString().c_str());
        return 1;
      }
      std::printf("loaded doc(\"%s\"): %u nodes\n",
                  corpus.doc(*id).name().c_str(), corpus.doc(*id).NodeCount());
    }
  } else {
    XmarkGenOptions gen;
    gen.open_auctions = 500;
    gen.items = 400;
    gen.persons = 500;
    auto id = GenerateXmarkDocument(corpus, gen);
    if (!id.ok()) return 1;
    std::printf("no files given; generated doc(\"xmark.xml\") with %u "
                "nodes\n",
                corpus.doc(*id).NodeCount());
  }

  // The engine publishes the corpus as epoch 0; every query from here
  // on is served through its cache and statistics layer, and \load /
  // \drop publish successor epochs.
  engine::EngineOptions options;
  options.num_threads = 4;
  options.num_shards = num_shards;
  options.trace_level = trace_level;
  options.default_limits = limits;
  engine::Engine eng(std::move(corpus), options);
  if (num_shards > 1) {
    std::printf("sharded execution: %zu shards per document\n", num_shards);
  }
  if (limits.deadline_ms > 0) {
    std::printf("per-query deadline: %.0f ms\n", limits.deadline_ms);
  }
  if (limits.memory_budget_bytes > 0) {
    std::printf("per-query memory budget: %llu MB\n",
                static_cast<unsigned long long>(limits.memory_budget_bytes /
                                                (1024 * 1024)));
  }

  std::printf(
      "enter an XQuery terminated by a ';' line ('&' runs it in the "
      "background)\n"
      "(\\docs, \\load, \\drop, \\epoch, \\stats, \\cache, \\explain, "
      "\\profile, \\metrics, \\kill, \\wait, \\quit)\n");

  // Serializes and prints one finished query result (sync or
  // background). In --json mode the shell emits the same stable
  // QueryResponse wire JSON the roxd HTTP server sends.
  auto print_response = [json_output](const engine::QueryResponse& resp) {
    if (json_output) {
      std::printf("%s", resp.ToJson().c_str());
      return;
    }
    const engine::QueryResult& r = resp.result;
    if (!resp.ok()) {
      std::printf("error: %s\n", resp.status.ToString().c_str());
      return;
    }
    // Rows serialize through the query's own pinned snapshot: a
    // concurrent (or just-issued) \drop cannot invalidate the
    // result's documents.
    constexpr size_t kMaxRows = 20;
    std::vector<std::string> rows = engine::SerializeResultRows(r, kMaxRows);
    for (std::string& s : rows) {
      if (s.size() > 200) s = s.substr(0, 200) + "...";
      std::printf("  %s\n", s.c_str());
    }
    if (r.items->size() > rows.size()) {
      std::printf("  ... (%zu more)\n", r.items->size() - rows.size());
    }
    if (r.result_cache_hit) {
      std::printf("%zu items in %.2f ms (replayed from result cache)\n",
                  r.items->size(), r.wall_ms);
    } else {
      std::printf(
          "%zu items in %.2f ms (epoch %llu); %llu edges executed%s; "
          "sampling %.2f ms, execution %.2f ms%s\n",
          r.items->size(), r.wall_ms,
          static_cast<unsigned long long>(r.epoch),
          static_cast<unsigned long long>(r.rox_stats.edges_executed),
          r.plan_cache_hit ? " (cached plan)" : "",
          r.rox_stats.sampling_time.TotalMillis(),
          r.rox_stats.execution_time.TotalMillis(),
          r.warm_started ? " (warm-started weights)" : "");
    }
  };

  // Queries running on the engine pool (submitted with '&'); \wait and
  // shell exit collect them.
  std::vector<std::future<engine::QueryResponse>> background;
  auto collect_background = [&]() {
    for (auto& f : background) {
      engine::QueryResponse resp = f.get();
      std::printf("[background query %llu]\n",
                  static_cast<unsigned long long>(resp.sequence()));
      print_response(resp);
    }
    background.clear();
  };

  std::string query, line;
  while (std::printf("xq> "), std::fflush(stdout),
         std::getline(std::cin, line)) {
    // Commands dispatch on the exact first token — a prefix match
    // would route a mistyped "\dropall x" into \drop — and any other
    // backslash line is rejected below instead of silently joining
    // the query buffer.
    const std::vector<std::string> args =
        !line.empty() && line[0] == '\\' ? Tokenize(line)
                                         : std::vector<std::string>{};
    const std::string cmd = args.empty() ? std::string() : args[0];
    if (cmd == "\\quit" || cmd == "\\q") break;
    if (cmd == "\\docs") {
      auto snap = eng.CurrentSnapshot();
      for (DocId d = 0; d < snap->DocCount(); ++d) {
        if (!snap->IsLive(d)) continue;
        std::printf("  doc(\"%s\") — %u nodes\n", snap->doc(d).name().c_str(),
                    snap->doc(d).NodeCount());
      }
      continue;
    }
    if (cmd == "\\load") {
      if (args.size() < 2 || args.size() > 3) {
        std::printf("usage: \\load FILE [NAME]\n");
        continue;
      }
      std::string xml;
      if (!ReadFile(args[1], &xml)) {
        std::printf("cannot open %s\n", args[1].c_str());
        continue;
      }
      std::string name = args.size() == 3 ? args[2] : Basename(args[1]);
      auto ids = eng.AddDocuments({{std::move(name), std::move(xml)}});
      if (!ids.ok()) {
        std::printf("error: %s\n", ids.status().ToString().c_str());
        continue;
      }
      auto snap = eng.CurrentSnapshot();
      std::printf("loaded doc(\"%s\"): %u nodes; published epoch %llu\n",
                  snap->doc(ids->front()).name().c_str(),
                  snap->doc(ids->front()).NodeCount(),
                  static_cast<unsigned long long>(eng.CurrentEpoch()));
      continue;
    }
    if (cmd == "\\drop") {
      if (args.size() != 2) {
        std::printf("usage: \\drop NAME\n");
        continue;
      }
      Status s = eng.RemoveDocument(args[1]);
      if (!s.ok()) {
        std::printf("error: %s\n", s.ToString().c_str());
        continue;
      }
      std::printf("dropped doc(\"%s\"); published epoch %llu\n",
                  args[1].c_str(),
                  static_cast<unsigned long long>(eng.CurrentEpoch()));
      continue;
    }
    if (cmd == "\\epoch") {
      engine::EngineStats stats = eng.Stats();
      auto snap = eng.CurrentSnapshot();
      std::printf(
          "  epoch %llu: %zu live docs (%zu slots), %llu publishes "
          "(+%llu/-%llu docs), %llu cache invalidations\n",
          static_cast<unsigned long long>(stats.epoch),
          snap->LiveDocCount(), snap->DocCount(),
          static_cast<unsigned long long>(stats.publishes),
          static_cast<unsigned long long>(stats.docs_added),
          static_cast<unsigned long long>(stats.docs_removed),
          static_cast<unsigned long long>(stats.cache_invalidations));
      continue;
    }
    if (cmd == "\\stats") {
      std::printf("%s\n", eng.Stats().ToString().c_str());
      continue;
    }
    if (cmd == "\\cache") {
      auto listing = eng.CacheContents();
      if (listing.empty()) {
        std::printf("  (cache empty)\n");
        continue;
      }
      std::printf("  %zu of %zu entries, %llu evictions\n", listing.size(),
                  eng.options().cache_capacity,
                  static_cast<unsigned long long>(eng.CacheEvictions()));
      for (const auto& entry : listing) {
        std::string text = entry.key;
        if (text.size() > 60) text = text.substr(0, 60) + "...";
        std::printf("  [e%llu, %llu hit%s]%s%s %s\n",
                    static_cast<unsigned long long>(entry.epoch),
                    static_cast<unsigned long long>(entry.hits),
                    entry.hits == 1 ? "" : "s",
                    entry.has_weights ? " +weights" : "",
                    entry.has_result ? " +result" : "", text.c_str());
      }
      continue;
    }
    if (cmd == "\\explain" || cmd == "\\profile") {
      // The rest of the line is the query (one-liners only — these are
      // inspection surfaces, not the main query path).
      std::string rest = line.substr(cmd.size());
      size_t start = rest.find_first_not_of(" \t");
      rest = start == std::string::npos ? std::string() : rest.substr(start);
      if (!rest.empty() && rest.back() == ';') rest.pop_back();
      if (rest.empty()) {
        std::printf("usage: %s QUERY (on one line)\n", cmd.c_str());
        continue;
      }
      engine::QueryRequest req;
      req.text = rest;
      req.mode = cmd == "\\explain" ? engine::QueryMode::kExplain
                                    : engine::QueryMode::kProfile;
      engine::QueryResponse resp = eng.Execute(req);
      if (json_output) {
        engine::ResponseJsonOptions jopts;
        jopts.include_trace = true;
        std::printf("%s", resp.ToJson(jopts).c_str());
        continue;
      }
      if (cmd == "\\explain") {
        if (!resp.ok()) {
          std::printf("error: %s\n", resp.status.ToString().c_str());
          continue;
        }
        std::printf("%s", resp.explain_text.c_str());
      } else {
        const engine::QueryResult& r = resp.result;
        if (!resp.ok()) {
          std::printf("error: %s\n", resp.status.ToString().c_str());
          if (r.trace != nullptr) std::printf("%s", r.trace->ToTree().c_str());
          continue;
        }
        std::printf("%s", r.trace->ToTree().c_str());
        std::printf("%zu items in %.2f ms (epoch %llu)%s%s\n",
                    r.items->size(), r.wall_ms,
                    static_cast<unsigned long long>(r.epoch),
                    r.plan_cache_hit ? " (cached plan)" : "",
                    r.warm_started ? " (warm-started weights)" : "");
      }
      continue;
    }
    if (cmd == "\\metrics") {
      std::printf("%s", obs::MetricsRegistry::Global().DumpText().c_str());
      continue;
    }
    if (cmd == "\\kill") {
      size_t n = eng.KillAll();
      std::printf("cancel signalled to %zu in-flight quer%s\n", n,
                  n == 1 ? "y" : "ies");
      continue;
    }
    if (cmd == "\\wait") {
      if (background.empty()) {
        std::printf("  (no background queries)\n");
        continue;
      }
      collect_background();
      continue;
    }
    if (!cmd.empty()) {
      std::printf(
          "unknown command %s (try \\docs, \\load, \\drop, \\epoch, "
          "\\stats, \\cache, \\explain, \\profile, \\metrics, \\kill, "
          "\\wait, \\quit)\n",
          cmd.c_str());
      continue;
    }
    if (line != ";" && line != "&") {
      query += line;
      query += '\n';
      continue;
    }
    if (line == "&") {
      // Run on the engine pool; the prompt stays live so \kill can
      // cancel it cooperatively.
      engine::QueryRequest req;
      req.text = query;
      req.client_tag = "xq_shell";
      background.push_back(eng.ExecuteAsync(std::move(req)));
      std::printf("submitted in background (\\kill cancels, \\wait "
                  "collects)\n");
      query.clear();
      continue;
    }
    // Execute the accumulated query through the engine.
    engine::QueryRequest req;
    req.text = query;
    req.client_tag = "xq_shell";
    engine::QueryResponse resp = eng.Execute(req);
    query.clear();
    print_response(resp);
  }
  // Collect (and thereby wait for) any background queries still in
  // flight so their results are not silently dropped at exit.
  collect_background();
  return 0;
}
