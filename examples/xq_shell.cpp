// Interactive XQuery shell over the concurrent query engine.
//
//   $ ./xq_shell [--num_shards=K] file1.xml file2.xml ...
//
// Loads the given XML files into a corpus (doc("<basename>") resolves
// them), hands the corpus to an Engine, then reads XQueries from stdin
// (terminated by a line with just ";") and executes each through the
// engine — so repeated queries hit the plan/weight/result cache exactly
// as they would on a server. With no files, a demo XMark document is
// generated as doc("xmark.xml"). --num_shards=K (default 1) turns on
// sharded intra-query execution: each query's materialization steps
// fan out over K corpus shards (\stats shows the per-shard row
// counts).
//
// Commands:
//   \docs   list documents
//   \stats  engine statistics (latency percentiles, cache hit rates)
//   \cache  query cache contents (most recently used first)
//   \quit

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "engine/engine.h"
#include "index/corpus.h"
#include "workload/xmark.h"
#include "xml/parser.h"

namespace {

std::string Basename(const std::string& path) {
  size_t slash = path.find_last_of('/');
  return slash == std::string::npos ? path : path.substr(slash + 1);
}

}  // namespace

int main(int argc, char** argv) {
  using namespace rox;
  Corpus corpus;

  size_t num_shards = 1;
  std::vector<char*> files;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    const std::string prefix = "--num_shards=";
    if (arg.rfind(prefix, 0) == 0) {
      char* end = nullptr;
      long v = std::strtol(arg.c_str() + prefix.size(), &end, 10);
      if (end == nullptr || *end != '\0' || v < 1 || v > 1024) {
        std::fprintf(stderr,
                     "invalid %s (want a positive integer <= 1024)\n",
                     arg.c_str());
        return 2;
      }
      num_shards = static_cast<size_t>(v);
    } else {
      files.push_back(argv[i]);
    }
  }

  if (!files.empty()) {
    for (char* file : files) {
      std::ifstream in(file);
      if (!in) {
        std::fprintf(stderr, "cannot open %s\n", file);
        return 1;
      }
      std::stringstream buf;
      buf << in.rdbuf();
      auto id = corpus.AddXml(buf.str(), Basename(file));
      if (!id.ok()) {
        std::fprintf(stderr, "%s: %s\n", file,
                     id.status().ToString().c_str());
        return 1;
      }
      std::printf("loaded doc(\"%s\"): %u nodes\n",
                  corpus.doc(*id).name().c_str(), corpus.doc(*id).NodeCount());
    }
  } else {
    XmarkGenOptions gen;
    gen.open_auctions = 500;
    gen.items = 400;
    gen.persons = 500;
    auto id = GenerateXmarkDocument(corpus, gen);
    if (!id.ok()) return 1;
    std::printf("no files given; generated doc(\"xmark.xml\") with %u "
                "nodes\n",
                corpus.doc(*id).NodeCount());
  }

  // The engine freezes the corpus; every query from here on is served
  // through its cache and statistics layer.
  engine::EngineOptions options;
  options.num_threads = 4;
  options.num_shards = num_shards;
  engine::Engine eng(std::move(corpus), options);
  if (num_shards > 1) {
    std::printf("sharded execution: %zu shards per document\n", num_shards);
  }

  std::printf(
      "enter an XQuery terminated by a ';' line "
      "(\\docs, \\stats, \\cache, \\quit)\n");
  std::string query, line;
  while (std::printf("xq> "), std::fflush(stdout),
         std::getline(std::cin, line)) {
    if (line == "\\quit" || line == "\\q") break;
    if (line == "\\docs") {
      const Corpus& c = eng.corpus();
      for (DocId d = 0; d < c.DocCount(); ++d) {
        std::printf("  doc(\"%s\") — %u nodes\n", c.doc(d).name().c_str(),
                    c.doc(d).NodeCount());
      }
      continue;
    }
    if (line == "\\stats") {
      std::printf("%s\n", eng.Stats().ToString().c_str());
      continue;
    }
    if (line == "\\cache") {
      auto listing = eng.CacheContents();
      if (listing.empty()) {
        std::printf("  (cache empty)\n");
        continue;
      }
      std::printf("  %zu of %zu entries, %llu evictions\n", listing.size(),
                  eng.options().cache_capacity,
                  static_cast<unsigned long long>(eng.CacheEvictions()));
      for (const auto& entry : listing) {
        std::string text = entry.key;
        if (text.size() > 60) text = text.substr(0, 60) + "...";
        std::printf("  [%llu hit%s]%s%s %s\n",
                    static_cast<unsigned long long>(entry.hits),
                    entry.hits == 1 ? "" : "s",
                    entry.has_weights ? " +weights" : "",
                    entry.has_result ? " +result" : "", text.c_str());
      }
      continue;
    }
    if (line != ";") {
      query += line;
      query += '\n';
      continue;
    }
    // Execute the accumulated query through the engine.
    engine::QueryResult r = eng.Run(query);
    query.clear();
    if (!r.ok()) {
      std::printf("error: %s\n", r.status.ToString().c_str());
      continue;
    }
    const Document& doc = eng.corpus().doc(r.result_doc);
    size_t shown = 0;
    for (Pre p : *r.items) {
      if (shown++ == 20) {
        std::printf("  ... (%zu more)\n", r.items->size() - 20);
        break;
      }
      std::string s = SerializeSubtree(doc, p);
      if (s.size() > 200) s = s.substr(0, 200) + "...";
      std::printf("  %s\n", s.c_str());
    }
    if (r.result_cache_hit) {
      std::printf("%zu items in %.2f ms (replayed from result cache)\n",
                  r.items->size(), r.wall_ms);
    } else {
      std::printf(
          "%zu items in %.2f ms; %llu edges executed%s; sampling %.2f ms, "
          "execution %.2f ms%s\n",
          r.items->size(), r.wall_ms,
          static_cast<unsigned long long>(r.rox_stats.edges_executed),
          r.plan_cache_hit ? " (cached plan)" : "",
          r.rox_stats.sampling_time.TotalMillis(),
          r.rox_stats.execution_time.TotalMillis(),
          r.warm_started ? " (warm-started weights)" : "");
    }
  }
  return 0;
}
