// Interactive XQuery shell over the ROX engine.
//
//   $ ./xq_shell file1.xml file2.xml ...
//
// Loads the given XML files into a corpus (doc("<basename>") resolves
// them), then reads XQueries from stdin (terminated by a line with just
// ";") and executes each with run-time optimization, printing the
// serialized result items and the optimizer statistics. With no files,
// a demo XMark document is generated as doc("xmark.xml").
//
// Commands: \docs  (list documents)   \quit

#include <cstdio>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>

#include "index/corpus.h"
#include "workload/xmark.h"
#include "xml/parser.h"
#include "xq/compile.h"

namespace {

std::string Basename(const std::string& path) {
  size_t slash = path.find_last_of('/');
  return slash == std::string::npos ? path : path.substr(slash + 1);
}

}  // namespace

int main(int argc, char** argv) {
  using namespace rox;
  Corpus corpus;

  if (argc > 1) {
    for (int i = 1; i < argc; ++i) {
      std::ifstream in(argv[i]);
      if (!in) {
        std::fprintf(stderr, "cannot open %s\n", argv[i]);
        return 1;
      }
      std::stringstream buf;
      buf << in.rdbuf();
      auto id = corpus.AddXml(buf.str(), Basename(argv[i]));
      if (!id.ok()) {
        std::fprintf(stderr, "%s: %s\n", argv[i],
                     id.status().ToString().c_str());
        return 1;
      }
      std::printf("loaded doc(\"%s\"): %u nodes\n",
                  corpus.doc(*id).name().c_str(), corpus.doc(*id).NodeCount());
    }
  } else {
    XmarkGenOptions gen;
    gen.open_auctions = 500;
    gen.items = 400;
    gen.persons = 500;
    auto id = GenerateXmarkDocument(corpus, gen);
    if (!id.ok()) return 1;
    std::printf("no files given; generated doc(\"xmark.xml\") with %u "
                "nodes\n",
                corpus.doc(*id).NodeCount());
  }

  std::printf("enter an XQuery terminated by a ';' line (\\docs, \\quit)\n");
  std::string query, line;
  while (std::printf("xq> "), std::fflush(stdout),
         std::getline(std::cin, line)) {
    if (line == "\\quit" || line == "\\q") break;
    if (line == "\\docs") {
      for (DocId d = 0; d < corpus.DocCount(); ++d) {
        std::printf("  doc(\"%s\") — %u nodes\n",
                    corpus.doc(d).name().c_str(), corpus.doc(d).NodeCount());
      }
      continue;
    }
    if (line != ";") {
      query += line;
      query += '\n';
      continue;
    }
    // Execute the accumulated query.
    auto compiled = xq::CompileXQuery(corpus, query);
    query.clear();
    if (!compiled.ok()) {
      std::printf("error: %s\n", compiled.status().ToString().c_str());
      continue;
    }
    RoxStats stats;
    auto result = xq::RunXQuery(corpus, *compiled, {}, &stats);
    if (!result.ok()) {
      std::printf("error: %s\n", result.status().ToString().c_str());
      continue;
    }
    DocId rdoc = compiled->graph.vertex(compiled->return_vertex).doc;
    const Document& doc = corpus.doc(rdoc);
    size_t shown = 0;
    for (Pre p : *result) {
      if (shown++ == 20) {
        std::printf("  ... (%zu more)\n", result->size() - 20);
        break;
      }
      std::string s = SerializeSubtree(doc, p);
      if (s.size() > 200) s = s.substr(0, 200) + "...";
      std::printf("  %s\n", s.c_str());
    }
    std::printf("%zu items; %llu edges executed; sampling %.2f ms, "
                "execution %.2f ms\n",
                result->size(),
                static_cast<unsigned long long>(stats.edges_executed),
                stats.sampling_time.TotalMillis(),
                stats.execution_time.TotalMillis());
  }
  return 0;
}
