// The §3.2 correlation demonstration: on XMark auctions the number of
// <bidder>s grows with the auction's <current> price, so the twin
// queries Q1 (price < P) and Qm1 (price > P) need *different* join
// orders — something no static optimizer can know, and exactly what
// ROX's re-sampling discovers at run time.
//
//   $ ./xmark_correlation [threshold]

#include <cstdio>
#include <cstdlib>

#include "rox/optimizer.h"
#include "workload/xmark.h"

namespace {

using namespace rox;

void RunVariant(const Corpus& corpus, DocId doc, double threshold,
                bool less_than) {
  XmarkQ1Graph q = BuildXmarkQ1Graph(corpus, doc, threshold, less_than);
  RoxOptimizer rox(corpus, q.graph, {});
  auto result = rox.Run();
  if (!result.ok()) {
    std::fprintf(stderr, "%s\n", result.status().ToString().c_str());
    return;
  }
  std::printf("%s  (current %s %g): %llu rows, cumulative intermediates "
              "%llu\n",
              less_than ? "Q1 " : "Qm1", less_than ? "<" : ">", threshold,
              static_cast<unsigned long long>(result->table.NumRows()),
              static_cast<unsigned long long>(
                  result->stats.cumulative_intermediate_rows));
  int pos = 0;
  for (EdgeId e : result->stats.execution_order) {
    std::printf("  %2d. %s\n", ++pos, q.graph.EdgeLabel(e).c_str());
  }
  std::printf("\n");
}

}  // namespace

int main(int argc, char** argv) {
  using namespace rox;
  double threshold = argc > 1 ? std::strtod(argv[1], nullptr) : 145.0;

  Corpus corpus;
  XmarkGenOptions gen;  // defaults: 2400 auctions, correlated bidders
  auto doc = GenerateXmarkDocument(corpus, gen);
  if (!doc.ok()) {
    std::fprintf(stderr, "%s\n", doc.status().ToString().c_str());
    return 1;
  }
  std::printf(
      "XMark-like document: %u auctions; bidders per auction grow with "
      "price.\nWatch where the bidder branch lands in each execution "
      "order:\n\n",
      gen.open_auctions);
  RunVariant(corpus, *doc, threshold, /*less_than=*/true);
  RunVariant(corpus, *doc, threshold, /*less_than=*/false);
  return 0;
}
