// The paper's motivating DBLP scenario (§4.1): authors that published
// in four venues, with correlated same-area author populations.
//
//   $ ./dblp_authors [venue1 venue2 venue3 venue4]
//
// Generates the synthetic DBLP corpus, compiles the 4-way author query
// through the XQuery frontend, runs ROX, and contrasts the join order
// it discovered with the correlation-blind classical pick.

#include <cstdio>
#include <string>
#include <vector>

#include "classical/executor.h"
#include "classical/rox_order.h"
#include "common/str_util.h"
#include "rox/optimizer.h"
#include "workload/dblp.h"
#include "xq/compile.h"

int main(int argc, char** argv) {
  using namespace rox;

  std::vector<std::string> venues = {"VLDB", "ICDE", "ICIP", "ADBIS"};
  if (argc == 5) {
    venues = {argv[1], argv[2], argv[3], argv[4]};
  }

  // Generate only the requested venues (scaled down for a demo).
  std::vector<int> indices;
  const auto& specs = Table3Documents();
  for (const std::string& v : venues) {
    int found = -1;
    for (size_t i = 0; i < specs.size(); ++i) {
      if (specs[i].name == v) found = static_cast<int>(i);
    }
    if (found < 0) {
      std::fprintf(stderr, "unknown venue %s; know:", v.c_str());
      for (const auto& s : specs) std::fprintf(stderr, " %s", s.name.c_str());
      std::fprintf(stderr, "\n");
      return 1;
    }
    indices.push_back(found);
  }
  DblpGenOptions gen;
  gen.tag_scale = 0.5;
  auto corpus = GenerateDblpCorpus(gen, indices);
  if (!corpus.ok()) {
    std::fprintf(stderr, "%s\n", corpus.status().ToString().c_str());
    return 1;
  }

  // The §4.1 query template, through the XQuery frontend.
  std::string query = "for ";
  for (size_t i = 0; i < venues.size(); ++i) {
    query += StrCat("$a", i + 1, " in doc(\"", venues[i], "\")//author",
                    i + 1 < venues.size() ? ",\n    " : "\n");
  }
  query += "where ";
  for (size_t i = 1; i < venues.size(); ++i) {
    query += StrCat("$a1/text() = $a", i + 1, "/text()",
                    i + 1 < venues.size() ? " and\n      " : "\n");
  }
  query += "return $a1";
  std::printf("XQuery:\n%s\n\n", query.c_str());

  auto compiled = xq::CompileXQuery(*corpus, query);
  if (!compiled.ok()) {
    std::fprintf(stderr, "%s\n", compiled.status().ToString().c_str());
    return 1;
  }

  RoxOptimizer rox(*corpus, compiled->graph, {});
  auto result = rox.Run();
  if (!result.ok()) {
    std::fprintf(stderr, "%s\n", result.status().ToString().c_str());
    return 1;
  }
  std::printf("ROX: %llu joined rows; sampling %.2f ms, execution %.2f ms\n",
              static_cast<unsigned long long>(result->table.NumRows()),
              result->stats.sampling_time.TotalMillis(),
              result->stats.execution_time.TotalMillis());
  std::printf("edge execution order:\n");
  for (EdgeId e : result->stats.execution_order) {
    std::printf("  %s\n", compiled->graph.EdgeLabel(e).c_str());
  }

  // Contrast with the classical optimizer's static choice.
  std::vector<DocId> docs = {0, 1, 2, 3};
  JoinOrder classical = ClassicalJoinOrder(*corpus, docs);
  auto cards = ComputeOrderCardinalities(*corpus, docs);
  uint64_t best = UINT64_MAX, classical_cum = 0;
  std::string best_label;
  for (const auto& oc : cards) {
    if (oc.cumulative < best) {
      best = oc.cumulative;
      best_label = oc.order.Label();
    }
    if (oc.order == classical) classical_cum = oc.cumulative;
  }
  std::printf(
      "\nclassical (smallest-input-first) order %s: %llu cumulative "
      "intermediate tuples\nbest order %s: %llu  (classical is %.1fx "
      "worse)\n",
      classical.Label().c_str(),
      static_cast<unsigned long long>(classical_cum), best_label.c_str(),
      static_cast<unsigned long long>(best),
      best ? static_cast<double>(classical_cum) / best : 0.0);
  return 0;
}
